"""The DSE engine: stage 1 + stage 2 + bottleneck search (Section VI).

``auto_dse`` restructures the function's loops (stage 1), then walks the
parallelism ladder node by node: the bottleneck node on the critical
path of the dependence graph doubles its parallelism degree while the
virtual-HLS estimate stays within the resource constraints; a node whose
next step is infeasible (or maxed out) leaves the optimization list; the
search ends when the list is empty.  The winning schedule is installed
on the function.

Evaluation is memoized at several layers (all local to one ``auto_dse``
call unless noted):

- *node config*: ``(node, parallelism)`` -> :class:`NodeConfig`;
- *evaluation*: ``(config fingerprints, bank_cap)`` -> scored design;
- *design*: ``(config fingerprints, partition fingerprints)`` -> lowered
  function + report, catching bank caps that derive identical banking;
- *partitions*: ``(config fingerprints, bank_cap)`` -> derived factors;
- *nest lowering*: per top-level loop nest, keyed on statement
  fingerprints (incremental lowering splices unchanged nests);
- *reports*: per estimator instance, keyed on function fingerprints;
- *isl kernels*: global process-wide memo tables
  (:mod:`repro.isl.memo`).

``cache=False`` disables every layer (including the global isl tables
for the duration of the call) so measured speedups compare genuinely
uncached runs; cached and uncached searches visit identical design
points and return bit-identical results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import faults as _faults
from repro import trace as _trace
from repro.diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    DiagnosticError,
    Severity,
    SourceLocation,
)
from repro.util.deadline import (
    Deadline,
    DeadlineExceeded,
    active as _active_deadline,
    deadline_scope,
)
from repro.dsl.function import Function
from repro.dsl.schedule import Schedule
from repro.depgraph.graph import build_dependence_graph
from repro.affine.ir import AffineStoreOp, FuncOp
from repro.affine.lowering import lower_program_incremental
from repro.hls.device import DEFAULT_DEVICE, FPGADevice
from repro.hls.estimator import HlsEstimator, TransientEstimatorError
from repro.hls.report import SynthesisReport, speedup
from repro.isl import memo as _isl_memo
from repro.polyir.program import PolyProgram
from repro.util.deprecation import warn_deprecated, warn_deprecated_kwargs
from repro.dse.checkpoint import (
    CheckpointJournal,
    candidate_key,
    make_header,
    workload_fingerprint,
)
from repro.dse.options import MAX_PARALLELISM, DseOptions
from repro.dse.pareto import (
    Objective,
    ParetoFrontier,
    ParetoPoint,
)
from repro.dse.surrogate import (
    SurrogateModel,
    candidate_features,
    memo_hit_rate,
)
from repro.dse.stage1 import Stage1Plan, plan_stage1
from repro.dse.stage2 import (
    NodeConfig,
    config_directives,
    derive_partitions,
    plan_node_config,
    stage1_program,
)
from repro.dse.stats import DseStats

MAX_ESTIMATOR_RETRIES = 2
RETRY_BACKOFF_S = 0.05
# The banking fallback ladder: full banking first, then trade banks for
# operator sharing when the spatial design overflows the device.
BANK_CAPS = (128, 16, 8)
# Cap on how long one retry-backoff slice may sleep before re-polling
# the active deadlines.
BACKOFF_SLICE_S = 0.01


def _backoff_sleep(
    seconds: float,
    sweep_deadline: Optional[Deadline] = None,
    slice_s: float = BACKOFF_SLICE_S,
) -> float:
    """Sleep up to ``seconds`` without sleeping through a deadline.

    The estimator retry backoff must not let a sweep overshoot its
    budgets while blocked in ``time.sleep``: the sleep is taken in small
    slices, each of which first polls the active per-candidate
    :class:`Deadline` (raising :class:`DeadlineExceeded`, which the
    candidate scope converts to a ``DSE003`` timeout quarantine) and
    gives up early -- without raising -- once the whole-sweep deadline
    is exhausted, so the search loop's own budget check fires at the
    next iteration.  Returns the wall time actually slept so callers can
    attribute it separately from estimation time.
    """
    slept = 0.0
    end = time.monotonic() + seconds
    while True:
        candidate_deadline = _active_deadline()
        if candidate_deadline is not None:
            candidate_deadline.poll()
        if sweep_deadline is not None and sweep_deadline.exceeded():
            return slept
        left = end - time.monotonic()
        if left <= 0:
            return slept
        nap = min(slice_s, left)
        if candidate_deadline is not None:
            # Never sleep meaningfully past the candidate budget; the
            # +1ms keeps the loop progressing when the budget boundary
            # lands inside this slice (the next poll then raises).
            nap = min(nap, max(candidate_deadline.remaining(), 0.0) + 0.001)
        time.sleep(nap)
        slept += nap


def _estimate_with_retries(
    estimator: HlsEstimator,
    func_op: FuncOp,
    location: SourceLocation,
    on_retry: Optional[Callable[[float], None]] = None,
    sweep_deadline: Optional[Deadline] = None,
) -> SynthesisReport:
    """Estimate with bounded, deadline-aware retry backoff.

    Shared by the in-process search and the speculative evaluation
    workers (:mod:`repro.dse.parallel`) so both retry transient
    estimator failures identically and raise the same ``DSE002`` when
    the retries run out.  ``on_retry`` receives the backoff actually
    slept before each retry.
    """
    last: Optional[TransientEstimatorError] = None
    for attempt in range(MAX_ESTIMATOR_RETRIES + 1):
        try:
            return estimator.estimate(func_op)
        except TransientEstimatorError as exc:
            last = exc
            if attempt < MAX_ESTIMATOR_RETRIES:
                slept = _backoff_sleep(
                    RETRY_BACKOFF_S * (2 ** attempt), sweep_deadline
                )
                if on_retry is not None:
                    on_retry(slept)
    raise DiagnosticError(
        f"estimator failed after {MAX_ESTIMATOR_RETRIES + 1} "
        f"attempts: {last}",
        code="DSE002",
        location=location,
    ) from last


@dataclass
class QuarantinedCandidate:
    """A design point whose evaluation failed; excluded from the search.

    The search keeps climbing with the remaining candidates instead of
    aborting; the failure survives as a structured diagnostic (not a
    traceback) so ``repro dse`` can report what was skipped and why.
    A ``bank_cap`` of 0 means the candidate failed while planning its
    node configurations, before a banking budget was chosen.
    """

    parallelism: Dict[str, int]
    bank_cap: int
    diagnostic: Diagnostic
    # Wall time lost before the watchdog fired, for DSE003 timeouts.
    elapsed_s: Optional[float] = None

    def __str__(self) -> str:
        return self.diagnostic.oneline()


@dataclass
class DseResult:
    """The outcome of automatic design space exploration."""

    function: Function
    report: SynthesisReport
    schedule: Schedule
    plan: Stage1Plan
    configs: Dict[str, NodeConfig]
    dse_time_s: float
    evaluations: int
    stats: Optional[DseStats] = None
    quarantine: List[QuarantinedCandidate] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    journal_path: Optional[str] = None
    #: Spans/metrics captured by a worker-side tracer (sharded sweeps
    #: ship these back for deterministic merging); None when the sweep
    #: ran under the caller's own tracer or with tracing off.
    trace: Optional[_trace.TraceData] = None
    #: The canonical objective spec the sweep ran under ("single" keeps
    #: the classic best-latency behavior and leaves `frontier` None).
    objective: str = "single"
    #: The dominance-pruned Pareto frontier, in canonical order
    #: (objective vector, then candidate key), for "pareto"/"weighted"
    #: objectives; see :mod:`repro.dse.pareto`.
    frontier: Optional[List["ParetoPoint"]] = None

    @property
    def degraded(self) -> bool:
        """Whether the sweep completed in a weakened form.

        True when any candidate was quarantined (including watchdog
        timeouts), the wall-clock budget ran out, or the sweep was
        interrupted -- the conditions under which the returned design is
        "best found" rather than "best reachable".
        """
        if self.quarantine:
            return True
        return bool(
            self.stats is not None
            and (self.stats.interrupted or self.stats.time_budget_hit)
        )

    def tile_vector(self, node: str) -> List[int]:
        """Paper-style achieved tile sizes for one node."""
        return self.configs[node].tile_vector(self.plan.orders[node])

    def tile_vectors(self) -> Dict[str, List[int]]:
        return {name: self.tile_vector(name) for name in self.configs}

    @property
    def parallelism(self) -> float:
        """Product of tile sizes divided by achieved II (paper metric).

        The product runs over *all* node configs: a multi-kernel design's
        parallelism is the product of its per-node tile products, not the
        largest node's (taking the max under-reported every design with
        more than one compute).
        """
        total = 1
        for config in self.configs.values():
            total *= config.total_parallelism
        ii = self.report.worst_ii() or 1
        return total / ii

    def speedup_vs(self, baseline: SynthesisReport) -> float:
        """Wall-clock speedup of this design over a baseline report."""
        return speedup(baseline, self.report)


@dataclass
class _Resilience:
    """Crash-safety state threaded through one sweep."""

    journal: Optional[CheckpointJournal] = None
    candidate_timeout_s: Optional[float] = None
    sweep_deadline: Optional[Deadline] = None
    fault_plan: Optional[_faults.FaultPlan] = None


def auto_dse(
    function: Function,
    options: Optional[DseOptions] = None,
    **legacy_kwargs,
) -> DseResult:
    """Run the two-stage DSE and install the best schedule found.

    All configuration travels in one :class:`~repro.dse.options.DseOptions`::

        auto_dse(function, options=DseOptions(cache=False, jobs=4))

    The pre-consolidation keyword form (``auto_dse(function,
    cache=False)``) still works with identical behavior but emits one
    :class:`DeprecationWarning` per call; see ``docs/api.md`` for the
    deprecation policy.

    ``options.cache=False`` disables all memoization layers (for
    measurement); the search trajectory and the result are identical
    either way.

    ``options.jobs`` > 1 enables *speculative candidate evaluation*:
    worker processes pre-evaluate the bank-cap fallback ladder and the
    next independent bottleneck-group trials while the search commits
    results strictly in sequential visit order, so the best design,
    report, and quarantine set stay bit-identical to a ``jobs=1`` sweep
    (see :mod:`repro.dse.parallel`).  Speculation is disabled under
    fault injection -- injected faults key on sequential candidate
    ordinals.

    Crash safety (see ``docs/resilience.md``):

    * ``options.checkpoint`` journals every really-evaluated candidate
      to an append-only JSON-lines file; with ``resume=True`` an
      existing journal (validated against the workload, device, and
      engine version -- ``DSE005`` on mismatch) replays completed
      candidates and the sweep continues where it died.
    * ``options.candidate_timeout_s`` arms a cooperative watchdog around
      each candidate: overruns are quarantined as ``DSE003`` timeouts.
    * ``options.time_budget_s`` bounds the whole sweep; when it runs out
      the search degrades gracefully to the best design found
      (``DSE004``).
    * ``options.fault_plan`` installs a deterministic fault-injection
      plan for the duration of the call (:mod:`repro.faults`; testing
      only).

    Observability: when a :mod:`repro.trace` tracer is active, the sweep
    records hierarchical spans (per candidate, per pipeline layer) and
    bulk-publishes its :class:`~repro.dse.stats.DseStats` counters as
    trace metrics.  Tracing never changes the result.
    """
    options = _coerce_options(options, legacy_kwargs)
    # Function-independent validation first, before anything (device
    # scaling, estimator construction) can fail with a less precise
    # message or leave a side effect behind.
    options.validate()
    objective = options.parsed_objective()
    start = time.perf_counter()
    device = options.resolved_device()
    clock_ns = options.resolved_clock_ns()
    resource_fraction = options.resource_fraction
    cache = options.cache
    checkpoint = options.checkpoint
    fault_plan = options.fault_plan
    jobs = options.jobs
    budget = device.scaled(resource_fraction) if resource_fraction < 1.0 else device
    estimator = HlsEstimator(
        device=device, clock_ns=clock_ns, memoize_reports=cache
    )

    stats = DseStats(cache_enabled=cache)
    engine = DiagnosticEngine()
    quarantine: List[QuarantinedCandidate] = []

    # Every option is validated *before* a checkpoint journal file is
    # created: an early raise must never leave a created-but-unusable
    # journal open or half-written on disk.
    if options.resume and checkpoint is None:
        raise DiagnosticError(
            "resume requested without a checkpoint journal path",
            code="DSE005",
            location=SourceLocation(function=function.name),
        )
    if (
        fault_plan is not None
        and fault_plan.plans("hang")
        and options.candidate_timeout_s is None
    ):
        # A hang with no watchdog would never return in a real sweep;
        # refuse the misconfigured harness up front instead of letting
        # the quarantine machinery mask it mid-sweep.
        raise ValueError(
            "fault plan schedules a hang but no candidate_timeout_s is "
            "set; the injected stall would have no active deadline"
        )
    resilience = _Resilience(
        candidate_timeout_s=options.candidate_timeout_s,
        sweep_deadline=(
            Deadline(options.time_budget_s)
            if options.time_budget_s is not None
            else None
        ),
        fault_plan=fault_plan,
    )

    journal: Optional[CheckpointJournal] = None
    if checkpoint is not None:
        header = make_header(
            function, device, resource_fraction, clock_ns,
            options.max_parallelism, options.keep_existing_schedule,
        )
        if options.resume:
            journal = CheckpointJournal.resume(
                checkpoint, header, engine=engine, fault_plan=fault_plan
            )
        else:
            journal = CheckpointJournal.create(
                checkpoint, header, fault_plan=fault_plan
            )
    resilience.journal = journal

    speculator = None
    isl_before = _isl_memo.stats_snapshot()
    isl_was_enabled = _isl_memo.set_enabled(cache)
    previous_plan = _faults.install(fault_plan) if fault_plan is not None else None

    span_args = None
    if _trace.enabled():
        span_args = {
            "function": function.name,
            "fingerprint": workload_fingerprint(
                function, options.keep_existing_schedule
            ),
            "cache": cache,
            "jobs": jobs or 1,
        }
    try:
        with _trace.span("dse.auto_dse", "dse", span_args):
            if jobs is not None and jobs > 1:
                if fault_plan is not None:
                    engine.note(
                        "DSE008",
                        "speculative evaluation is disabled under fault "
                        "injection (faults key on sequential candidate "
                        "ordinals); evaluating sequentially",
                    )
                else:
                    from repro.dse.parallel import SpeculativeEvaluator

                    try:
                        speculator = SpeculativeEvaluator(
                            function,
                            device=device,
                            clock_ns=clock_ns,
                            keep_existing_schedule=options.keep_existing_schedule,
                            candidate_timeout_s=options.candidate_timeout_s,
                            jobs=jobs,
                        )
                    except Exception as exc:
                        engine.note(
                            "DSE008",
                            f"speculative evaluation unavailable ({exc}); "
                            "evaluating sequentially",
                        )
            if speculator is not None:
                stats.speculation_jobs = speculator.jobs
            result = _search(
                function, device, budget, estimator, stats,
                options.max_parallelism, options.keep_existing_schedule, cache,
                engine, quarantine, resilience, speculator,
                objective=objective, surrogate=options.surrogate,
            )
    finally:
        _isl_memo.set_enabled(isl_was_enabled)
        if fault_plan is not None:
            _faults.install(previous_plan)
        if speculator is not None:
            speculator.close()
        if journal is not None:
            journal.close()

    stats.finish_isl(isl_before, _isl_memo.stats_snapshot())
    stats.report_hits = estimator.report_hits
    stats.report_misses = estimator.report_misses
    stats.total_s = time.perf_counter() - start

    tracer = _trace.active()
    if tracer is not None:
        _publish_stats_metrics(tracer, stats)

    report, configs, plan, frontier = result
    return DseResult(
        function=function,
        report=report,
        schedule=function.schedule.copy(),
        plan=plan,
        configs=configs,
        dse_time_s=stats.total_s,
        evaluations=stats.evaluations,
        stats=stats,
        quarantine=quarantine,
        diagnostics=list(engine.diagnostics),
        journal_path=checkpoint,
        objective=objective.canonical,
        frontier=frontier,
    )


def _coerce_options(options, legacy_kwargs: dict) -> DseOptions:
    """Resolve the ``options``-vs-legacy-kwargs call forms.

    The supported form passes a single :class:`DseOptions`.  Two legacy
    forms are shimmed with a single :class:`DeprecationWarning` per
    call: loose keyword arguments (``auto_dse(f, cache=False)``) and a
    positional :class:`~repro.hls.device.FPGADevice` second argument
    (the pre-consolidation signature).  Mixing both forms is an error
    rather than a guess about precedence.
    """
    if options is not None and not isinstance(options, DseOptions):
        # Legacy positional `device` second argument.
        warn_deprecated(
            "auto_dse: passing a device positionally is deprecated; "
            "pass options=DseOptions(device=...) instead",
            stacklevel=3,
        )
        legacy_kwargs = dict(legacy_kwargs, device=options)
        return DseOptions.from_kwargs(**legacy_kwargs)
    if legacy_kwargs:
        if options is not None:
            raise TypeError(
                "auto_dse() accepts either options=DseOptions(...) or the "
                "legacy keyword arguments, not both"
            )
        # Build first: a typo'd kwarg raises TypeError (as the old
        # signature did) without also emitting a deprecation warning.
        coerced = DseOptions.from_kwargs(**legacy_kwargs)
        warn_deprecated_kwargs(
            "auto_dse", "options=DseOptions(...)", legacy_kwargs, stacklevel=3
        )
        return coerced
    return options if options is not None else DseOptions()


# DseStats counters published as trace metrics at the end of a traced
# sweep, with their metric names.  Bulk-loading from the authoritative
# stats (instead of counting twice in the hot loops) keeps the metrics
# consistent with `--stats` for free.
_STATS_METRICS = (
    ("evaluations", "dse.evaluations"),
    ("candidates", "dse.candidates"),
    ("lowerings", "dse.lowerings"),
    ("group_lowerings", "dse.group_lowerings"),
    ("estimations", "dse.estimations"),
    ("quarantined", "dse.quarantined"),
    ("estimator_retries", "dse.estimator_retries"),
    ("replayed", "dse.replayed"),
    ("timeouts", "dse.timeouts"),
    ("speculative_submitted", "dse.speculative_submitted"),
    ("speculative_used", "dse.speculative_used"),
    ("eval_cache_hits", "dse.cache.evaluation.hits"),
    ("eval_cache_misses", "dse.cache.evaluation.misses"),
    ("design_cache_hits", "dse.cache.design.hits"),
    ("design_cache_misses", "dse.cache.design.misses"),
    ("lowering_cache_hits", "dse.cache.nest_lowering.hits"),
    ("lowering_cache_misses", "dse.cache.nest_lowering.misses"),
    ("report_hits", "dse.cache.report.hits"),
    ("report_misses", "dse.cache.report.misses"),
    ("config_cache_hits", "dse.cache.config.hits"),
    ("config_cache_misses", "dse.cache.config.misses"),
    ("partition_cache_hits", "dse.cache.partitions.hits"),
    ("partition_cache_misses", "dse.cache.partitions.misses"),
    ("pareto_candidates", "dse.pareto.candidates"),
    ("pareto_evaluated", "dse.pareto.evaluated"),
    ("surrogate_skips", "dse.pareto.surrogate_skips"),
    ("frontier_size", "dse.pareto.frontier_size"),
)


def _publish_stats_metrics(tracer, stats: DseStats) -> None:
    """Mirror one sweep's :class:`DseStats` into the tracer's metrics."""
    metrics = tracer.metrics
    for attr, name in _STATS_METRICS:
        value = getattr(stats, attr)
        if value:
            metrics.count(name, value)
    for table, (hits, misses) in sorted(stats.isl_counters.items()):
        if hits:
            metrics.count(f"isl.memo.{table}.hits", hits)
        if misses:
            metrics.count(f"isl.memo.{table}.misses", misses)
    if stats.retry_backoff_s:
        metrics.observe("dse.retry_backoff_s", stats.retry_backoff_s)
    if stats.timeout_s:
        metrics.observe("dse.timeout_s", stats.timeout_s)


def _search(
    function: Function,
    device: FPGADevice,
    budget: FPGADevice,
    estimator: HlsEstimator,
    stats: DseStats,
    max_parallelism: int,
    keep_existing_schedule: bool,
    cache: bool,
    engine: DiagnosticEngine,
    quarantine: List[QuarantinedCandidate],
    resilience: _Resilience,
    speculator=None,
    objective: Optional[Objective] = None,
    surrogate: bool = True,
) -> Tuple[
    SynthesisReport, Dict[str, NodeConfig], Stage1Plan,
    Optional[List[ParetoPoint]],
]:
    if objective is None:
        objective = Objective()
    journal = resilience.journal
    plan_hooks = resilience.fault_plan
    structural, saved_partitions = _prepare_function(
        function, keep_existing_schedule
    )

    # Legality preflight on the directives the search will build upon
    # (structural after/fuse, or the user's full schedule when kept):
    # a dependence-violating directive is rejected here, before any
    # lowering, with a diagnostic naming the violated dependence.
    from repro.preflight import preflight_schedule

    preflight_schedule(function, engine=engine)
    engine.raise_if_errors()

    graph = build_dependence_graph(function, analyze=False)
    t0 = time.perf_counter()
    with _trace.span("dse.stage1", "dse"):
        plan = plan_stage1(function, graph)
        program = stage1_program(function, plan)
    stats.stage1_s += time.perf_counter() - t0

    nodes = [c.name for c in function.computes]
    parallelism = {name: 1 for name in nodes}

    # -- memo layers (all scoped to this call) ------------------------------
    config_cache: Dict[Tuple[str, int], NodeConfig] = {}
    eval_cache: Dict[tuple, Tuple[SynthesisReport, Dict[str, NodeConfig], FuncOp]] = {}
    design_cache: Dict[tuple, Tuple[SynthesisReport, FuncOp]] = {}
    partitions_cache: Dict[tuple, Dict[str, Tuple[int, ...]]] = {}
    nest_cache: Optional[Dict[tuple, list]] = {} if cache else None

    def node_config(name: str, degree: int) -> NodeConfig:
        if not cache:
            return plan_node_config(function, plan, name, degree, program=program)
        key = (name, degree)
        config = config_cache.get(key)
        if config is None:
            stats.config_cache_misses += 1
            config = plan_node_config(function, plan, name, degree, program=program)
            config_cache[key] = config
        else:
            stats.config_cache_hits += 1
        return config

    def _diagnostic_of(exc: BaseException) -> Diagnostic:
        if isinstance(exc, DiagnosticError):
            return exc.diagnostic
        return Diagnostic(
            Severity.ERROR,
            "DSE001",
            f"{type(exc).__name__}: {exc}",
            location=SourceLocation(function=function.name),
        )

    def quarantine_candidate(
        exc: BaseException, par: Dict[str, int], bank_cap: int
    ) -> None:
        diagnostic = _diagnostic_of(exc)
        elapsed = getattr(exc, "elapsed_s", None)
        stats.quarantined += 1
        if diagnostic.code == "DSE003":
            stats.timeouts += 1
            if elapsed is not None:
                stats.timeout_s += elapsed
        quarantine.append(
            QuarantinedCandidate(dict(par), bank_cap, diagnostic, elapsed_s=elapsed)
        )
        engine.emit(diagnostic)
        if journal is not None:
            journal.append_eval(
                stats.candidates, candidate_key(par, bank_cap), par, bank_cap,
                code=diagnostic.code, message=diagnostic.message,
                elapsed_s=elapsed,
            )

    @contextmanager
    def candidate_deadline():
        """Arm the per-candidate watchdog; overruns become DSE003 errors.

        The :class:`Deadline` is polled cooperatively from the hot loops
        of Fourier-Motzkin elimination, AST building, and lowering, so a
        pathological candidate is abandoned at its next checkpoint
        instead of hanging the sweep.
        """
        budget_s = resilience.candidate_timeout_s
        if budget_s is None:
            yield
            return
        try:
            with deadline_scope(Deadline(budget_s)):
                yield
        except DeadlineExceeded as exc:
            error = DiagnosticError(
                f"candidate evaluation timed out after {exc.elapsed_s:.3f}s "
                f"(budget {exc.budget_s:.3f}s)",
                code="DSE003",
                location=SourceLocation(function=function.name),
            )
            error.elapsed_s = exc.elapsed_s
            raise error from exc

    def timed_estimate(func_op: FuncOp) -> SynthesisReport:
        stats.estimations += 1
        t0 = time.perf_counter()
        backoff_before = stats.retry_backoff_s

        def on_retry(slept: float) -> None:
            stats.estimator_retries += 1
            stats.retry_backoff_s += slept

        try:
            return _estimate_with_retries(
                estimator, func_op,
                location=SourceLocation(function=function.name),
                on_retry=on_retry,
                sweep_deadline=resilience.sweep_deadline,
            )
        finally:
            # Retry backoff is idle waiting, not estimation: attribute
            # it to its own counter so --stats does not inflate the
            # estimator's share of the profile.
            stats.estimation_s += (
                time.perf_counter() - t0
                - (stats.retry_backoff_s - backoff_before)
            )

    def lower_and_estimate(
        configs_fp: tuple, bank_cap: int, exact: bool = False
    ) -> Tuple[SynthesisReport, FuncOp]:
        """Install partitions, lower, estimate -- with design-level reuse.

        ``exact=True`` bypasses the design-cache *read* (never the
        write) so the estimator genuinely runs: the exhaustive
        (``surrogate=False``) frontier pass uses it to make
        ``stats.estimations`` an honest count of exact estimator calls.
        """
        pkey = (configs_fp, bank_cap)
        derived = partitions_cache.get(pkey) if cache else None
        if derived is None:
            if cache:
                stats.partition_cache_misses += 1
            derived = derive_partitions(function, max_banks=bank_cap)
            if cache:
                partitions_cache[pkey] = derived
        else:
            stats.partition_cache_hits += 1
        _apply_partitions(function, saved_partitions, derived)

        partitions_fp = tuple(p.fingerprint() for p in function.placeholders())
        dkey = (configs_fp, partitions_fp)
        if cache and not exact:
            hit = design_cache.get(dkey)
            if hit is not None:
                stats.design_cache_hits += 1
                return hit
            stats.design_cache_misses += 1
        stats.lowerings += 1
        t0 = time.perf_counter()
        scheduled = PolyProgram(function).apply_schedule()
        func_op = lower_program_incremental(scheduled, cache=nest_cache, stats=stats)
        stats.lowering_s += time.perf_counter() - t0
        if nest_cache is None:
            stats.group_lowerings += len(func_op.body)
        report = timed_estimate(func_op)
        if cache:
            design_cache[dkey] = (report, func_op)
        return report, func_op

    # -- multi-objective bookkeeping ----------------------------------------
    # The ladder runs identically for every objective (single-objective
    # results stay bit-identical); frontier modes additionally remember
    # every scored candidate and every distinct parallelism vector, in
    # visit order, so the post-ladder enrichment pass can complete the
    # (visited parallelism) x (bank cap) grid deterministically.
    scored: Dict[str, Tuple[Dict[str, int], int, SynthesisReport]] = {}
    visited_pars: List[Dict[str, int]] = []
    _seen_pars: set = set()

    def note_scored(
        par: Dict[str, int], bank_cap: int, report: SynthesisReport
    ) -> None:
        if not objective.wants_frontier:
            return
        frozen = tuple(sorted(par.items()))
        if frozen not in _seen_pars:
            _seen_pars.add(frozen)
            visited_pars.append(dict(par))
        jkey = candidate_key(par, bank_cap)
        if jkey not in scored:
            scored[jkey] = (dict(par), bank_cap, report)

    def evaluate(
        par: Dict[str, int],
        bank_cap: int = 128,
        force: bool = False,
        remote=None,
        exact: bool = False,
    ) -> Tuple[SynthesisReport, Dict[str, NodeConfig], Optional[FuncOp]]:
        stats.evaluations += 1
        configs = {name: node_config(name, par[name]) for name in nodes}
        configs_fp = tuple(configs[name].fingerprint() for name in nodes)
        ekey = (configs_fp, bank_cap)
        if cache and not force and not exact:
            hit = eval_cache.get(ekey)
            if hit is not None:
                stats.eval_cache_hits += 1
                note_scored(par, bank_cap, hit[0])
                return hit
            stats.eval_cache_misses += 1
        jkey = candidate_key(par, bank_cap)
        if journal is not None and not force and not exact:
            record = journal.replay(jkey)
            if record is not None:
                # Resumed sweep: this candidate was already scored before
                # the crash.  The journaled cycles/resources are all the
                # search decisions consume; no func_op exists (the final
                # best design is re-lowered for real at the end).
                stats.replayed += 1
                report = journal.report_from(
                    record, function.name, device, estimator.clock_ns
                )
                note_scored(par, bank_cap, report)
                return report, configs, None
        ordinal = stats.candidates
        stats.candidates += 1
        span_args = None
        if _trace.enabled():
            span_args = {
                "ordinal": ordinal,
                "bank_cap": bank_cap,
                "parallelism": dict(par),
                "speculative": remote is not None,
            }
        if remote is not None:
            # Commit a speculatively computed outcome at this candidate's
            # sequential position: same counters, journal record, and
            # failure semantics as the local path, with the lowering and
            # estimation already paid for in a worker process.  No
            # func_op exists; only rejected scores are committed this
            # way, so the search never needs one (accepted candidates
            # are re-evaluated locally before commit).
            stats.speculative_used += 1
            tracer = _trace.active()
            if tracer is not None:
                with tracer.span("dse.candidate", "dse", span_args):
                    if getattr(remote, "trace", None) is not None:
                        tracer.graft(remote.trace)
            if not remote.ok:
                error = DiagnosticError(remote.diagnostic)
                if remote.diagnostic.code == "DSE003" and remote.elapsed_s is not None:
                    error.elapsed_s = remote.elapsed_s
                raise error
            if journal is not None:
                journal.append_eval(
                    ordinal, jkey, par, bank_cap,
                    report=remote.report, elapsed_s=remote.elapsed_s,
                )
            result = (remote.report, configs, None)
            if cache:
                eval_cache[ekey] = result
            note_scored(par, bank_cap, remote.report)
            return result
        if plan_hooks is not None:
            plan_hooks.enter_candidate(ordinal)
        t0 = time.perf_counter()
        try:
            with _trace.span("dse.candidate", "dse", span_args):
                with candidate_deadline():
                    _install_schedule(function, plan, configs, structural, program)
                    report, func_op = lower_and_estimate(
                        configs_fp, bank_cap, exact=exact
                    )
        finally:
            if plan_hooks is not None:
                plan_hooks.exit_candidate()
        if journal is not None:
            journal.append_eval(
                ordinal, jkey, par, bank_cap,
                report=report, elapsed_s=time.perf_counter() - t0,
            )
        result = (report, configs, func_op)
        if cache:
            eval_cache[ekey] = result
        note_scored(par, bank_cap, report)
        return result

    # The degree-1 baseline must evaluate: without it there is no legal
    # design to degrade to, so a failure here is fatal (as a diagnostic,
    # not a traceback).
    try:
        report, configs, func_op = evaluate(parallelism)
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        raise DiagnosticError(_diagnostic_of(exc)) from exc
    best = (report, configs, dict(parallelism), 128)
    # The degree-1 design is the latency normalizer for weighted
    # objectives (the worst latency the ladder ever accepts).
    baseline_report = report

    # Fused statements share one pipeline, so they step together: the
    # optimization unit is the fusion group of the bottleneck node.
    group_of = {name: [name] for name in nodes}
    for group in plan.fused_groups:
        for member in group:
            group_of[member] = group

    def latencies_for_best() -> Dict[str, int]:
        """Per-node latencies of the current best design, journal-aware.

        On a resumed sweep the best design may have been replayed (no
        lowered func_op); its latency attribution comes from the journal,
        or -- if the crash landed between the eval and lat appends -- from
        one forced re-evaluation.
        """
        nonlocal report, configs, func_op
        jkey = candidate_key(best[2], best[3])
        if func_op is None:
            cached = journal.latencies(jkey) if journal is not None else None
            if cached is not None:
                return cached
            report, configs, func_op = evaluate(best[2], best[3], force=True)
        latencies = _node_latencies(func_op, timed_estimate)
        if journal is not None:
            journal.append_latencies(jkey, latencies)
        return latencies

    active = set(nodes)

    # -- speculative evaluation (auto_dse(jobs=N)) --------------------------
    # The ladder's control flow under "every trial gets rejected" is a
    # pure function of the current latencies, so the next few trials the
    # sequential search would really evaluate can be predicted and
    # dispatched to worker processes ahead of time.  The search itself
    # stays sequential: it *commits* results -- via evaluate(remote=...)
    # -- in exactly the order it would have visited them, so cached,
    # uncached, and speculative sweeps are bit-identical.  A mispredicted
    # or lost speculation only costs worker time, never correctness.

    def speculation_frontier(latencies: Dict[str, int]) -> List[Dict[str, int]]:
        """The next trials the search would evaluate, assuming rejections."""
        sim_active = set(active)
        sim_par = dict(parallelism)
        trials: List[Dict[str, int]] = []
        steps = 0
        while sim_active and len(trials) < speculator.depth and steps < 8 * len(nodes) + 8:
            steps += 1
            pick = _pick_bottleneck(graph, latencies, sim_active)
            if pick is None:
                break
            sim_members = group_of[pick]
            sim_trial = dict(sim_par)
            sim_exhausted = False
            for member in sim_members:
                sim_trial[member] = sim_par[member] * 2
                if sim_trial[member] > _max_parallelism(function, member, max_parallelism):
                    sim_exhausted = True
            if sim_exhausted:
                sim_active.difference_update(sim_members)
                continue
            try:
                with candidate_deadline():
                    sim_plan = {
                        member: node_config(member, sim_trial[member])
                        for member in sim_members
                    }
            except KeyboardInterrupt:
                raise
            except Exception:
                # The real search will re-derive and quarantine this one.
                sim_active.difference_update(sim_members)
                continue
            if all(
                sim_plan[member].unrolls == configs[member].unrolls
                and sim_plan[member].pipeline_dim == configs[member].pipeline_dim
                for member in sim_members
            ):
                sim_par = sim_trial
                continue
            trials.append(sim_trial)
            sim_active.difference_update(sim_members)
        return trials

    def prefetch(trial: Dict[str, int]) -> None:
        """Dispatch one trial's full bank-cap ladder to the workers."""
        trial_configs_fp = tuple(
            node_config(name, trial[name]).fingerprint() for name in nodes
        )
        for cap in BANK_CAPS:
            if cache and (trial_configs_fp, cap) in eval_cache:
                continue
            jkey = candidate_key(trial, cap)
            if journal is not None and journal.replay(jkey) is not None:
                continue
            if speculator.prefetch(trial, cap):
                stats.speculative_submitted += 1

    def evaluate_trial(
        par: Dict[str, int], bank_cap: int
    ) -> Tuple[SynthesisReport, Dict[str, NodeConfig], Optional[FuncOp]]:
        """One ladder evaluation, served speculatively when possible.

        A speculative score destined for *rejection* is committed as-is
        (the search never needs its lowered function).  A score that
        will be *accepted* is re-evaluated locally so the search owns a
        real func_op for bottleneck attribution -- the same work the
        sequential search performs for an accepted candidate, with the
        rejected siblings' work offloaded to the pool.
        """
        if speculator is None:
            return evaluate(par, bank_cap)
        outcome = speculator.take(par, bank_cap)
        if outcome is None:
            return evaluate(par, bank_cap)
        if (
            outcome.ok
            and _within_budget(outcome.report, budget)
            and outcome.report.total_cycles < best[0].total_cycles
        ):
            return evaluate(par, bank_cap)
        return evaluate(par, bank_cap, remote=outcome)

    try:
        while active:
            if (
                resilience.sweep_deadline is not None
                and resilience.sweep_deadline.exceeded()
            ):
                # Same graceful-degradation contract as estimator faults:
                # the best design found so far is the answer.
                stats.time_budget_hit = True
                engine.note(
                    "DSE004",
                    f"sweep time budget "
                    f"({resilience.sweep_deadline.budget_s:.1f}s) exhausted; "
                    "stopping at the best design found so far",
                )
                break
            try:
                latencies = latencies_for_best()
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                # Bottleneck analysis failed on an already-accepted design:
                # degrade gracefully to the best design found so far.
                engine.emit(_diagnostic_of(exc))
                engine.note(
                    "GEN001",
                    "bottleneck analysis failed; stopping the search at the "
                    "best design found so far",
                )
                break
            if speculator is not None:
                for speculative_trial in speculation_frontier(latencies):
                    prefetch(speculative_trial)
            bottleneck = _pick_bottleneck(graph, latencies, active)
            if bottleneck is None:
                break
            members = group_of[bottleneck]
            trial = dict(parallelism)
            exhausted = False
            for member in members:
                trial[member] = parallelism[member] * 2
                if trial[member] > _max_parallelism(function, member, max_parallelism):
                    exhausted = True
            if exhausted:
                active.difference_update(members)
                continue
            # Factor quantization (even-divisor preference, legality) can make
            # a doubled degree produce the exact same configs; that is a no-op
            # step, not a dead end -- keep climbing the ladder.
            try:
                with candidate_deadline():
                    trial_plan = {
                        member: node_config(member, trial[member])
                        for member in members
                    }
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                quarantine_candidate(exc, trial, 0)
                active.difference_update(members)
                continue
            if all(
                trial_plan[member].unrolls == configs[member].unrolls
                and trial_plan[member].pipeline_dim == configs[member].pipeline_dim
                for member in members
            ):
                parallelism = trial
                continue
            accepted = False
            # Full banking first; if the spatial design overflows, trade
            # banks for operator sharing (a larger II lets copies timeshare
            # units -- the paper's BICG [1,32] / II=2 design point).
            for bank_cap in BANK_CAPS:
                try:
                    trial_report, trial_configs, trial_func = evaluate_trial(trial, bank_cap)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    # The trial schedule is installed on the function; its
                    # failure must not abort the sweep.  Quarantine it (the
                    # failure is banking-independent, so other caps are not
                    # retried) and keep searching from the best design.
                    quarantine_candidate(exc, trial, bank_cap)
                    break
                if _within_budget(trial_report, budget) and trial_report.total_cycles < best[0].total_cycles:
                    parallelism = trial
                    best = (trial_report, trial_configs, dict(parallelism), bank_cap)
                    report, configs, func_op = trial_report, trial_configs, trial_func
                    accepted = True
                    break
            if not accepted:
                active.difference_update(members)
    except KeyboardInterrupt:
        # SIGINT is a graceful stop: the checkpoint journal is already
        # flushed through the last completed candidate, and the best
        # design found so far is installed and returned.
        stats.interrupted = True
        engine.note(
            "DSE007",
            "sweep interrupted; stopping at the best design found so far",
        )

    # -- frontier enrichment (objective="pareto"/"weighted") ----------------
    # The ladder above ran exactly as it does for "single" (its
    # trajectory, journal records, and best design are bit-identical);
    # frontier modes now complete the (visited parallelism) x (bank cap)
    # grid so latency-vs-resource tradeoffs the ladder rejected (or
    # never tried at smaller bank caps) become frontier candidates.
    frontier_points: Optional[List[ParetoPoint]] = None
    if objective.wants_frontier and not stats.interrupted:
        frontier = ParetoFrontier()
        with _trace.span("dse.pareto", "dse"):
            grid: List[Tuple[Dict[str, int], int, str]] = []
            for par in visited_pars:
                for cap in BANK_CAPS:
                    grid.append((par, cap, candidate_key(par, cap)))
            stats.pareto_candidates += len(grid)
            pending = [entry for entry in grid if entry[2] not in scored]

            # Provable skips (surrogate mode only): a pending candidate
            # whose *design signature* -- node-config fingerprints plus
            # the partition factors derived at its bank cap -- matches
            # an already-scored design lowers to the bit-identical
            # design, so its report is copied instead of estimated.
            # Signature equality is the only skip condition; the
            # surrogate model merely orders the exact evaluations, which
            # is why the frontier is provably identical with the
            # surrogate on or off (the differential suite pins this).
            sig_partitions: Dict[tuple, Dict[str, Tuple[int, ...]]] = {}

            def design_signature(par: Dict[str, int], cap: int) -> tuple:
                sig_configs = {
                    name: node_config(name, par[name]) for name in nodes
                }
                sig_fp = tuple(
                    sig_configs[name].fingerprint() for name in nodes
                )
                pkey = (sig_fp, cap)
                derived = sig_partitions.get(pkey)
                if derived is None:
                    derived = partitions_cache.get(pkey) if cache else None
                    if derived is None:
                        _install_schedule(
                            function, plan, sig_configs, structural, program
                        )
                        derived = derive_partitions(function, max_banks=cap)
                    sig_partitions[pkey] = derived
                return (
                    sig_fp,
                    tuple(
                        sorted(
                            (name, tuple(factors))
                            for name, factors in derived.items()
                        )
                    ),
                )

            def total_par(par: Dict[str, int]) -> int:
                total = 1
                for degree in par.values():
                    total *= degree
                return total

            iteration_volume = 0
            for compute in function.computes:
                volume = 1
                for it in compute.iters:
                    volume *= it.extent
                iteration_volume += volume
            hit_rate = memo_hit_rate(_isl_memo.stats_snapshot())

            if surrogate:
                sig_to_report: Dict[tuple, SynthesisReport] = {}
                for skey in scored:
                    spar, scap, sreport = scored[skey]
                    sig_to_report.setdefault(
                        design_signature(spar, scap), sreport
                    )
                model = SurrogateModel(
                    axes=objective.axes, weights=objective.weights
                )
                for skey in scored:
                    spar, scap, sreport = scored[skey]
                    model.observe(
                        candidate_features(
                            total_par(spar), scap, iteration_volume, hit_rate
                        ),
                        objective.vector(sreport),
                    )
                ordered = model.rank(
                    [
                        (
                            entry,
                            candidate_features(
                                total_par(entry[0]), entry[1],
                                iteration_volume, hit_rate,
                            ),
                        )
                        for entry in pending
                    ]
                )
            else:
                ordered = pending

            try:
                for par, cap, jkey in ordered:
                    if (
                        resilience.sweep_deadline is not None
                        and resilience.sweep_deadline.exceeded()
                    ):
                        if not stats.time_budget_hit:
                            stats.time_budget_hit = True
                            engine.note(
                                "DSE004",
                                f"sweep time budget "
                                f"({resilience.sweep_deadline.budget_s:.1f}s) "
                                "exhausted; publishing the partial frontier",
                            )
                        break
                    if surrogate:
                        signature = design_signature(par, cap)
                        donor = sig_to_report.get(signature)
                        if donor is not None:
                            # Bit-identical design already scored: copy
                            # its report.  Journaled (ordinal unchanged:
                            # no real evaluation started) so a resumed
                            # sweep replays the copy too.
                            stats.surrogate_skips += 1
                            note_scored(par, cap, donor)
                            if journal is not None:
                                journal.append_eval(
                                    stats.candidates, jkey, par, cap,
                                    report=donor, elapsed_s=0.0,
                                )
                            continue
                    try:
                        enriched_report, _, _ = evaluate(
                            par, cap, exact=not surrogate
                        )
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        quarantine_candidate(exc, par, cap)
                        continue
                    stats.pareto_evaluated += 1
                    if surrogate:
                        sig_to_report.setdefault(signature, enriched_report)
            except KeyboardInterrupt:
                stats.interrupted = True
                engine.note(
                    "DSE007",
                    "sweep interrupted; publishing the partial frontier",
                )

            for par, cap, jkey in grid:
                entry = scored.get(jkey)
                if entry is None:
                    continue
                if not _within_budget(entry[2], budget):
                    continue
                frontier.insert(
                    ParetoPoint.from_report(jkey, par, cap, objective, entry[2])
                )
            frontier_points = frontier.points()
            stats.frontier_size += len(frontier_points)
            if journal is not None:
                journal.append_frontier(
                    objective.canonical, frontier.to_records()
                )

        if objective.mode == "weighted" and frontier_points:
            # Select the frontier member minimizing the normalized
            # weighted sum; it becomes the installed design.
            reference = objective.reference_vector(baseline_report, budget)
            selected = min(
                frontier_points,
                key=lambda p: (
                    objective.scalarize(p.values, reference), p.key,
                ),
            )
            sel_par = dict(selected.parallelism)
            sel_configs = {
                name: node_config(name, sel_par[name]) for name in nodes
            }
            best = (scored[selected.key][2], sel_configs, sel_par,
                    selected.bank_cap)

    # Reinstall the best schedule (the last trial may have been rejected).
    report, configs, best_cap = best[0], best[1], best[3]
    with _trace.span("dse.finalize", "dse"):
        _install_schedule(function, plan, configs, structural, program)
        configs_fp = tuple(configs[name].fingerprint() for name in nodes)
        report, _ = lower_and_estimate(configs_fp, best_cap)
    return report, configs, plan, frontier_points


def _prepare_function(function: Function, keep_existing_schedule: bool):
    """Reset the function to the directives the search builds upon.

    Returns the structural directives and the baseline partition
    schemes.  Shared by :func:`_search` and the speculative evaluation
    workers (:mod:`repro.dse.parallel`), which must replicate the exact
    pre-search state on their own copy of the function.
    """
    structural = function.structural_directives()
    if not keep_existing_schedule:
        function.reset_schedule()
        for directive in structural:
            function.schedule.add(directive)
    saved_partitions = {p.name: p.partition_scheme for p in function.placeholders()}
    return structural, saved_partitions


def _install_schedule(
    function: Function,
    plan: Stage1Plan,
    configs,
    structural=(),
    program: Optional[PolyProgram] = None,
) -> None:
    """Install a trial schedule on the function (partitions separate).

    Structural after/fuse directives (algorithm-level loop sharing) are
    re-added first so they keep their meaning under the new schedule.
    """
    function.reset_schedule()
    for directive in structural:
        function.schedule.add(directive)
    for directive in config_directives(function, plan, configs, program=program):
        function.schedule.add(directive)


def _apply_partitions(function: Function, saved_partitions, derived) -> None:
    """Reset partition schemes to the saved baseline, then apply derived."""
    for placeholder in function.placeholders():
        placeholder.partition_scheme = saved_partitions.get(placeholder.name)
    for name, factors in derived.items():
        if any(f > 1 for f in factors):
            placeholder = next(
                p for p in function.placeholders() if p.name == name
            )
            placeholder.partition(list(factors), "cyclic")


def _install(
    function: Function,
    plan: Stage1Plan,
    configs,
    saved_partitions,
    bank_cap: int = 128,
    structural=(),
) -> None:
    """Install a trial schedule and derived partitions on the function."""
    _install_schedule(function, plan, configs, structural)
    _apply_partitions(
        function, saved_partitions, derive_partitions(function, max_banks=bank_cap)
    )


def _within_budget(report: SynthesisReport, budget: FPGADevice) -> bool:
    return (
        report.resources.dsp <= budget.dsp
        and report.resources.lut <= budget.lut
        and report.resources.ff <= budget.ff
    )


def _node_latencies(
    func_op: FuncOp, estimate: Callable[[FuncOp], SynthesisReport]
) -> Dict[str, int]:
    """Latency attributed to each compute via its top-level loop nest.

    Per-nest estimates are reused across ladder steps for free: each
    shell function's fingerprint covers only the one nest (and the
    partition schemes of arrays it touches), so a memoizing ``estimate``
    recognizes nests unchanged since the previous evaluation.
    """
    latencies: Dict[str, int] = {}
    for op in func_op.body:
        shell = FuncOp(func_op.name, func_op.arrays)
        # Deep-copy dict-valued attributes: the shells must never alias
        # the parent's mutable attribute payloads (e.g. partitions).
        shell.attributes.update(
            {
                key: dict(value) if isinstance(value, dict) else value
                for key, value in func_op.attributes.items()
            }
        )
        shell.body.append(op)
        cycles = estimate(shell).total_cycles
        names = {
            inner.attributes.get("statement")
            for inner in op.walk()
            if isinstance(inner, AffineStoreOp)
        }
        for name in names:
            if name:
                latencies[name] = latencies.get(name, 0) + cycles
    return latencies


def _pick_bottleneck(graph, latencies: Dict[str, int], active) -> Optional[str]:
    """The highest-latency active node on the critical data path."""
    paths = graph.data_paths()
    ordered_paths = sorted(
        paths,
        key=lambda p: sum(latencies.get(n, 0) for n in p),
        reverse=True,
    )
    for path in ordered_paths:
        candidates = [n for n in path if n in active]
        if candidates:
            return max(candidates, key=lambda n: latencies.get(n, 0))
    remaining = [n for n in active]
    if remaining:
        return max(remaining, key=lambda n: latencies.get(n, 0))
    return None


def _max_parallelism(function: Function, node: str, cap: int) -> int:
    compute = function.get_compute(node)
    total = 1
    for it in compute.iters:
        total *= it.extent
    return min(cap, total)
