"""DSE stage 1: dependence-aware code transformation (paper Section VI-A).

For every node of the dependence graph, iteratively recheck loop-carried
dependences and restructure until some loop dimension is free of carried
dependences (so stage 2 can pipeline over it):

* a node whose innermost position already hosts a free dim is left alone;
* a node with free dims in the wrong place gets *loop interchange* --
  carried dims move outward, free dims inward;
* a node with no free dim at all (Seidel-style stencils) gets *loop
  skewing* of its two innermost dims, which rotates the dependence cone
  so the inner dim of the wavefront becomes free, then an interchange;
* finally, nodes that can legally share a pipeline are *conservatively
  fused* (the split-interchange-merge of paper Fig. 10).

The stage emits plain scheduling directives, so its output composes with
user-specified primitives and with stage 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.depgraph.analysis import cross_offsets
from repro.depgraph.graph import DependenceGraph
from repro.dsl.function import Function
from repro.dsl.schedule import After, Directive, Interchange, Skew
from repro.polyir.program import PolyProgram
from repro.dse.analysis import carried_for_statement, free_dims

MAX_ITERATIONS = 4


@dataclass
class Stage1Plan:
    """Stage 1 output: restructuring directives plus per-node facts."""

    directives: List[Directive] = field(default_factory=list)
    # Final loop order per node with carried dims first, free dims last.
    orders: Dict[str, List[str]] = field(default_factory=dict)
    # Dims known to be free of carried RAW deps after restructuring.
    free: Dict[str, List[str]] = field(default_factory=dict)
    skewed: Dict[str, bool] = field(default_factory=dict)
    fused_groups: List[List[str]] = field(default_factory=list)
    # Number of leading loop levels frozen by structural after/fuse
    # (shared loops carry the algorithm's interleaving and must survive).
    frozen: Dict[str, int] = field(default_factory=dict)
    # Lazily-filled cache of full (RAW/WAR/WAW) dependence sets per node;
    # stage 2 consults these on every parallelism trial.
    deps_cache: Dict[str, list] = field(default_factory=dict)


def structural_frozen_prefixes(function: Function) -> Dict[str, int]:
    """Loop levels locked by the user's structural after/fuse directives."""
    frozen: Dict[str, int] = {}
    for directive in function.structural_directives():
        if directive.level is None:
            continue
        producer = function.get_compute(directive.other)
        try:
            position = producer.iter_names.index(directive.level)
        except ValueError:
            continue
        for name in (directive.other, directive.compute_name):
            frozen[name] = max(frozen.get(name, 0), position + 1)
    return frozen


def plan_stage1(function: Function, graph: Optional[DependenceGraph] = None) -> Stage1Plan:
    """Compute the dependence-aware restructuring for a function."""
    plan = Stage1Plan()
    plan.frozen = structural_frozen_prefixes(function)
    program = PolyProgram(function)

    for stmt in program.statements:
        prefix = plan.frozen.get(stmt.name, 0)
        directives = _restructure_node(program, stmt.name, prefix)
        plan.directives.extend(directives)
        final = program.statement(stmt.name)
        plan.orders[stmt.name] = list(final.loop_order)
        plan.free[stmt.name] = free_dims(final)
        plan.skewed[stmt.name] = any(isinstance(d, Skew) for d in directives)

    plan.fused_groups = _plan_fusion(function, program)
    return plan


def _restructure_node(program: PolyProgram, name: str, prefix: int = 0) -> List[Directive]:
    """Iteratively recheck and transform one node (bounded iterations).

    Only loop levels below the structural ``prefix`` may be reordered or
    skewed; the shared outer loops stay where the algorithm put them.
    """
    directives: List[Directive] = []
    for _ in range(MAX_ITERATIONS):
        stmt = program.statement(name)
        free = [d for d in free_dims(stmt) if d in stmt.loop_order[prefix:]]
        if free:
            moves = _interchanges_for_order(stmt.loop_order, free, name, prefix)
            for move in moves:
                program.apply_directive(move)
            directives.extend(moves)
            return directives
        # No free dim: skew the two innermost loops into a wavefront.
        if stmt.depth() - prefix < 2:
            return directives  # too shallow below the frozen prefix
        outer, inner = stmt.loop_order[-2], stmt.loop_order[-1]
        deps = carried_for_statement(stmt, kinds=("RAW", "WAR", "WAW"))
        if not _skew_legal(deps, outer, inner):
            # Non-uniform dependences (unbounded negative inner distance)
            # cannot be legalized by any finite skew -- e.g. a forward
            # substitution's x[i] <- x[j<i] feedback.  Leave the node
            # serial rather than emit a wrong wavefront.
            return directives
        factor = _skew_factor(deps, outer, inner)
        skew = Skew(name, outer, inner, factor, f"{outer}_w", f"{inner}_w")
        program.apply_directive(skew)
        directives.append(skew)
        swap = Interchange(name, f"{outer}_w", f"{inner}_w")
        program.apply_directive(swap)
        directives.append(swap)
        # Loop back: recheck dependences on the transformed statement.
    return directives


def _skew_legal(deps, outer: str, inner: str) -> bool:
    """Whether a finite skew of (outer, inner) can legalize every dep.

    Requires each dependence's inner-dim distance to be known (constant,
    or the dep is carried at the inner dim, where the minimum carried
    distance bounds it below by 1).  An unknown inner distance on an
    outer-carried dependence means the wavefront could run backwards.
    """
    for dep in deps:
        if inner not in dep.dims:
            continue
        if dep.distance[inner] is None and dep.carried_dim != inner:
            return False
    return True


def _skew_factor(deps, outer: str, inner: str) -> int:
    """Smallest skew making every dependence strictly forward in
    ``inner + factor * outer``.

    A dependence with distances ``(do, dn)`` on (outer, inner) needs
    ``dn + factor * do >= 1``; heat-style stencils with ``dn = -1``
    therefore require factor 2, while Seidel's ``(1, 0)`` needs 1.
    """
    needed = 1
    for dep in deps:
        if outer not in dep.dims or inner not in dep.dims:
            continue
        do = dep.distance[outer]
        if do is None and dep.carried_dim == outer:
            # carried at the outer dim with non-constant distance: the
            # minimum carried distance is the binding (worst) case.
            do = dep.min_distance or 1
        dn = dep.distance[inner]
        if do is None or dn is None or do < 1:
            continue
        needed = max(needed, -(-(1 - dn) // do))
    return max(1, needed)


def _interchanges_for_order(
    current: List[str], free: List[str], name: str, prefix: int = 0
) -> List[Directive]:
    """Directives placing carried dims outermost and free dims innermost
    within the unfrozen suffix of the loop order."""
    locked = list(current[:prefix])
    suffix = current[prefix:]
    carried = [d for d in suffix if d not in free]
    target = locked + carried + [d for d in suffix if d in free]
    order = list(current)
    moves: List[Directive] = []
    for position, want in enumerate(target):
        at = order.index(want)
        if at != position:
            moves.append(Interchange(name, order[position], order[at]))
            order[position], order[at] = order[at], order[position]
    return moves


def _plan_fusion(function: Function, program: PolyProgram) -> List[List[str]]:
    """Groups of nodes that may legally share one pipeline.

    Conservative rule: two consecutive nodes fuse when their (restructured)
    loop nests have identical extents level by level and either no
    producer-consumer relation connects them or every connecting access
    is a constant translation with non-positive offsets (the consumer
    only reads elements already produced).
    """
    groups: List[List[str]] = []
    computes = function.computes
    for index, compute in enumerate(computes):
        stmt = program.statement(compute.name)
        extents = tuple(stmt.loop_extent(d) for d in stmt.loop_order)
        placed = False
        # Only the group ending in the *immediately preceding* compute is
        # a candidate: fusing across an intermediate statement would hoist
        # this compute ahead of producers it transitively depends on.
        if groups and index > 0 and groups[-1][-1] == computes[index - 1].name:
            group = groups[-1]
            leader = program.statement(group[-1])
            leader_extents = tuple(leader.loop_extent(d) for d in leader.loop_order)
            if extents == leader_extents and all(
                _fusable(
                    function.get_compute(member), compute,
                    program.statement(member).loop_order, stmt.loop_order,
                )
                for member in group
            ):
                group.append(compute.name)
                placed = True
        if not placed:
            groups.append([compute.name])
    return [g for g in groups]


def _fusable(producer, consumer, producer_order=None, consumer_order=None) -> bool:
    """Whether two computes may share a pipeline.

    Statements with no shared data fuse freely (each keeps its own loop
    order inside the fused body).  A producer-consumer pair fuses only
    when the accesses are constant translations with non-positive
    offsets *and* both statements iterate in the same restructured loop
    order -- the alignment argument is meaningless if one side was
    interchanged (the ATAX pattern: tmp flows between transposed
    reductions).
    """
    offsets = cross_offsets(producer, consumer)
    if not offsets:
        return True  # no shared data at all
    if producer_order is not None and producer_order != consumer_order:
        return False
    for value in offsets.values():
        if value is None:
            return False
        if any(entry > 0 for entry in value):
            return False
    return True
