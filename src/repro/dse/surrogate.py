"""An analytic surrogate ranker for Pareto-mode candidate ordering.

When the engine enriches a sweep into a frontier (``objective="pareto"``
or ``"weighted"``), the grid of (parallelism vector, bank cap)
candidates left to score can be large.  Two cost-avoidance mechanisms
apply, and only the first may skip exact estimation:

* **Provable skips** (engine-side): a candidate whose *design
  signature* -- node-config fingerprints plus derived partition factors
  -- equals an already-scored design is bit-identical by construction,
  so its report is copied instead of re-estimated.  This is the only
  skip path; it cannot change the frontier.
* **Surrogate ordering** (this module): the remaining candidates are
  evaluated in predicted-quality order, so a sweep that dies at its
  time budget has spent the estimator on the most promising designs
  first.  Ordering never changes *which* candidates are scored in an
  unbudgeted sweep -- the differential suite pins frontier identity
  with the surrogate on and off.

The model is a tiny least-squares fit in log space, per objective axis,
over features already available mid-sweep (no extra estimator calls):

* log2 of the candidate's total parallelism (product over nodes);
* log2 of the bank cap (memory-port pressure proxy);
* the workload's iteration volume (op-count proxy, log2);
* the sweep's aggregate isl memo hit rate so far (how much structure
  repeats -- a constant per sweep, it biases the intercept only).

With fewer than :data:`MIN_SAMPLES` observations (or without numpy) the
model falls back to a fixed analytic heuristic: latency falls with
parallelism and rises as the bank cap shrinks; resources do the
opposite.  The fallback keeps ordering deterministic, which is all
correctness requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy ships with the toolchain, but the fallback keeps us honest
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via NUMPY_OK=False tests
    _np = None

#: Minimum observations before the least-squares fit replaces the
#: analytic fallback.
MIN_SAMPLES = 3

#: Human-readable feature names, in column order (docs/pareto.md).
FEATURE_NAMES = (
    "intercept",
    "log2_total_parallelism",
    "log2_bank_cap",
    "log2_iteration_volume",
    "memo_hit_rate",
)


def candidate_features(
    total_parallelism: int,
    bank_cap: int,
    iteration_volume: int,
    memo_hit_rate: float,
) -> Tuple[float, ...]:
    """The feature row of one candidate (see :data:`FEATURE_NAMES`)."""
    return (
        1.0,
        math.log2(max(1, total_parallelism)),
        math.log2(max(1, bank_cap)),
        math.log2(max(1, iteration_volume)),
        float(memo_hit_rate),
    )


def memo_hit_rate(isl_counters: Dict[str, Tuple[int, int]]) -> float:
    """Aggregate hit rate across the isl memo tables (0.0 when cold)."""
    hits = sum(h for h, _ in isl_counters.values())
    misses = sum(m for _, m in isl_counters.values())
    total = hits + misses
    return hits / total if total else 0.0


# The analytic fallback's per-axis coefficients over FEATURE_NAMES:
# latency improves (falls) with parallelism and degrades as banking
# shrinks; resource axes grow with parallelism.  Magnitudes only order
# candidates, they are not predictions.
_FALLBACK = {
    "latency": (0.0, -1.0, -0.5, 1.0, 0.0),
    "dsp": (0.0, 1.0, 0.5, 0.0, 0.0),
    "bram": (0.0, 0.5, 1.0, 0.0, 0.0),
    "lut": (0.0, 1.0, 0.5, 0.0, 0.0),
    "ff": (0.0, 1.0, 0.5, 0.0, 0.0),
}


@dataclass
class SurrogateModel:
    """A per-sweep ranker: fit on scored candidates, rank the rest.

    One instance lives inside one ``auto_dse`` call; axes match the
    sweep's :class:`~repro.dse.pareto.Objective`.
    """

    axes: Tuple[str, ...]
    weights: Tuple[float, ...]
    _rows: List[Tuple[float, ...]] = field(default_factory=list)
    _targets: List[Tuple[float, ...]] = field(default_factory=list)
    _coefficients: Optional[List[Tuple[float, ...]]] = None

    def observe(
        self, features: Sequence[float], values: Sequence[int]
    ) -> None:
        """Record one scored candidate (objective vector in axis order)."""
        self._rows.append(tuple(features))
        self._targets.append(
            tuple(math.log2(max(1, value)) for value in values)
        )
        self._coefficients = None  # refit lazily

    @property
    def fitted(self) -> bool:
        """Whether enough samples exist for the least-squares fit."""
        return _np is not None and len(self._rows) >= MIN_SAMPLES

    def _fit(self) -> List[Tuple[float, ...]]:
        if self._coefficients is not None:
            return self._coefficients
        if not self.fitted:
            self._coefficients = [
                _FALLBACK.get(axis, _FALLBACK["lut"]) for axis in self.axes
            ]
            return self._coefficients
        matrix = _np.asarray(self._rows, dtype=float)
        targets = _np.asarray(self._targets, dtype=float)
        solution, _, _, _ = _np.linalg.lstsq(matrix, targets, rcond=None)
        self._coefficients = [
            tuple(float(c) for c in solution[:, i])
            for i in range(len(self.axes))
        ]
        return self._coefficients

    def predict(self, features: Sequence[float]) -> Tuple[float, ...]:
        """Predicted log2 objective vector for one candidate."""
        coefficients = self._fit()
        return tuple(
            sum(c * f for c, f in zip(axis_coeffs, features))
            for axis_coeffs in coefficients
        )

    def score(self, features: Sequence[float]) -> float:
        """A single promise score (lower = evaluate sooner)."""
        prediction = self.predict(features)
        return sum(w * p for w, p in zip(self.weights, prediction))

    def rank(
        self, candidates: Sequence[Tuple[object, Sequence[float]]]
    ) -> List[object]:
        """Order ``(item, features)`` pairs by predicted promise.

        The tie-break is the original index, so equal scores preserve
        canonical grid order and the ranking stays deterministic.
        """
        scored = [
            (self.score(features), index, item)
            for index, (item, features) in enumerate(candidates)
        ]
        scored.sort(key=lambda entry: (entry[0], entry[1]))
        return [item for _, _, item in scored]
