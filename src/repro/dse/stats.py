"""Profiling counters for the DSE evaluation engine.

:class:`DseStats` records how much work one :func:`~repro.dse.engine.auto_dse`
call performed and how much each caching layer saved: design-point
evaluations, cache hits/misses per layer (evaluation, design, lowering,
report, config, partition), the globally memoized isl kernel counters
(delta over the run), and wall-time per phase (stage 1, lowering, AST
building, estimation).  Attached to :class:`~repro.dse.engine.DseResult`
and printed by ``repro dse --stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Sequence, Tuple


@dataclass
class DseStats:
    """Work and cache counters for one DSE run."""

    cache_enabled: bool = True

    # -- work performed -----------------------------------------------------
    evaluations: int = 0          # design points scored (incl. cache hits)
    lowerings: int = 0            # full program lowerings requested
    group_lowerings: int = 0      # top-level nests actually (re)lowered
    estimations: int = 0          # estimator invocations (incl. memo hits)

    # -- fault tolerance ----------------------------------------------------
    quarantined: int = 0          # candidate evaluations that failed
    estimator_retries: int = 0    # transient estimator failures retried
    retry_backoff_s: float = 0.0  # wall time slept between estimator retries

    # -- resilience ---------------------------------------------------------
    candidates: int = 0           # real evaluations started (journal ordinals)
    replayed: int = 0             # candidates satisfied from a resume journal
    timeouts: int = 0             # candidates quarantined by the watchdog
    timeout_s: float = 0.0        # wall time lost to timed-out candidates
    interrupted: bool = False     # SIGINT stopped the sweep gracefully
    time_budget_hit: bool = False  # --time-budget exhausted mid-sweep

    # -- speculative evaluation (auto_dse(jobs=N)) --------------------------
    speculation_jobs: int = 0     # worker processes backing this sweep
    speculative_submitted: int = 0  # candidate evaluations sent to workers
    speculative_used: int = 0     # worker results committed by the search

    # -- multi-objective (objective="pareto"/"weighted") --------------------
    pareto_candidates: int = 0    # frontier-enrichment grid members considered
    pareto_evaluated: int = 0     # enrichment candidates exactly estimated
    surrogate_skips: int = 0      # enrichment reports copied (design-identical)
    frontier_size: int = 0        # frontier members returned

    # -- cache layers -------------------------------------------------------
    eval_cache_hits: int = 0      # (configs, bank_cap) evaluation reuse
    eval_cache_misses: int = 0
    design_cache_hits: int = 0    # (configs, partitions) lower+estimate reuse
    design_cache_misses: int = 0
    lowering_cache_hits: int = 0  # per-nest incremental lowering reuse
    lowering_cache_misses: int = 0
    report_hits: int = 0          # estimator whole-report memo
    report_misses: int = 0
    config_cache_hits: int = 0    # (node, parallelism) -> NodeConfig reuse
    config_cache_misses: int = 0
    partition_cache_hits: int = 0  # (configs, bank_cap) -> partitions reuse
    partition_cache_misses: int = 0

    # -- globally memoized isl kernels (delta over this run) ----------------
    isl_counters: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    # -- wall time ----------------------------------------------------------
    stage1_s: float = 0.0
    lowering_s: float = 0.0       # includes astbuild_s
    astbuild_s: float = 0.0
    estimation_s: float = 0.0
    total_s: float = 0.0

    # Fields that are properties of a run rather than amounts of work;
    # everything else merges by summation in :meth:`merge`.
    _MERGE_ALL = ("cache_enabled",)
    _MERGE_ANY = ("interrupted", "time_budget_hit")
    _MERGE_MAX = ("speculation_jobs",)

    @classmethod
    def merge(cls, shards: "Sequence[DseStats]") -> "DseStats":
        """Fold per-shard stats into one deterministic aggregate.

        Numeric counters and wall times sum (merged totals equal the sum
        of shard totals, in shard order -- float addition is performed
        left to right so the result is reproducible); ``cache_enabled``
        holds only if every shard cached; the degradation flags hold if
        any shard degraded; ``speculation_jobs`` takes the widest shard.
        ``isl_counters`` merges key-wise by summation.
        """
        merged = cls()
        numeric = [
            f.name
            for f in fields(cls)
            if f.name != "isl_counters"
            and f.name not in cls._MERGE_ALL
            and f.name not in cls._MERGE_ANY
            and f.name not in cls._MERGE_MAX
        ]
        shards = list(shards)
        for name in numeric:
            value = sum(getattr(shard, name) for shard in shards)
            setattr(merged, name, value)
        for name in cls._MERGE_ALL:
            setattr(merged, name, all(getattr(s, name) for s in shards))
        for name in cls._MERGE_ANY:
            setattr(merged, name, any(getattr(s, name) for s in shards))
        for name in cls._MERGE_MAX:
            setattr(merged, name, max((getattr(s, name) for s in shards), default=0))
        counters: Dict[str, Tuple[int, int]] = {}
        for shard in shards:
            for key, (hits, misses) in shard.isl_counters.items():
                have = counters.get(key, (0, 0))
                counters[key] = (have[0] + hits, have[1] + misses)
        merged.isl_counters = counters
        return merged

    def finish_isl(self, before: Dict[str, Tuple[int, int]], after: Dict[str, Tuple[int, int]]) -> None:
        """Record isl memo hit/miss deltas between two snapshots."""
        self.isl_counters = {
            name: (
                after[name][0] - before.get(name, (0, 0))[0],
                after[name][1] - before.get(name, (0, 0))[1],
            )
            for name in after
        }

    def summary(self) -> str:
        """A human-readable multi-line profile."""

        def rate(hits: int, misses: int) -> str:
            total = hits + misses
            if not total:
                return "-"
            return f"{100.0 * hits / total:.0f}%"

        lines = [
            f"dse profile (cache {'on' if self.cache_enabled else 'off'}):",
            f"  evaluations        {self.evaluations}",
            f"  lowerings          {self.lowerings}"
            f" (nests lowered: {self.group_lowerings})",
            f"  estimations        {self.estimations}",
            f"  quarantined        {self.quarantined}"
            f" (estimator retries: {self.estimator_retries},"
            f" timeouts: {self.timeouts})",
            f"  replayed           {self.replayed}"
            f" (from checkpoint journal)",
            f"  speculation        {self.speculative_used}/{self.speculative_submitted}"
            f" used (workers: {self.speculation_jobs})",
        ]
        if self.pareto_candidates:
            lines.append(
                f"  pareto             {self.frontier_size} frontier designs"
                f" ({self.pareto_evaluated} estimated,"
                f" {self.surrogate_skips} copied"
                f" of {self.pareto_candidates} grid candidates)"
            )
        lines += [
            "  cache layer            hits   misses   hit-rate",
            f"    evaluation         {self.eval_cache_hits:6d} {self.eval_cache_misses:8d}"
            f"   {rate(self.eval_cache_hits, self.eval_cache_misses):>8}",
            f"    design             {self.design_cache_hits:6d} {self.design_cache_misses:8d}"
            f"   {rate(self.design_cache_hits, self.design_cache_misses):>8}",
            f"    nest lowering      {self.lowering_cache_hits:6d} {self.lowering_cache_misses:8d}"
            f"   {rate(self.lowering_cache_hits, self.lowering_cache_misses):>8}",
            f"    report             {self.report_hits:6d} {self.report_misses:8d}"
            f"   {rate(self.report_hits, self.report_misses):>8}",
            f"    node config        {self.config_cache_hits:6d} {self.config_cache_misses:8d}"
            f"   {rate(self.config_cache_hits, self.config_cache_misses):>8}",
            f"    partitions         {self.partition_cache_hits:6d} {self.partition_cache_misses:8d}"
            f"   {rate(self.partition_cache_hits, self.partition_cache_misses):>8}",
        ]
        for name, (hits, misses) in sorted(self.isl_counters.items()):
            lines.append(
                f"    isl {name:<14} {hits:6d} {misses:8d}   {rate(hits, misses):>8}"
            )
        lines += [
            "  wall time:",
            f"    stage 1            {self.stage1_s * 1e3:8.1f} ms",
            f"    lowering           {self.lowering_s * 1e3:8.1f} ms"
            f" (ast build {self.astbuild_s * 1e3:.1f} ms)",
            f"    estimation         {self.estimation_s * 1e3:8.1f} ms"
            f" (retry backoff {self.retry_backoff_s * 1e3:.1f} ms)",
            f"    total              {self.total_s * 1e3:8.1f} ms",
        ]
        return "\n".join(lines)
