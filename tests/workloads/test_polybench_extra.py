"""Tests for the extended kernel suite: semantics + DSE robustness."""

import numpy as np
import pytest

from repro.affine import interpret
from repro.pipeline import estimate, lower_to_affine
from repro.workloads import polybench_extra as extra


class TestSemantics:
    def test_atax(self):
        f = extra.atax(8)
        arrays = f.allocate_arrays(seed=0)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        tmp = ref["tmp"] + ref["A"] @ ref["x"]
        want = ref["y"] + ref["A"].T @ tmp
        assert np.allclose(arrays["y"], want, rtol=1e-3)

    def test_mvt(self):
        f = extra.mvt(8)
        arrays = f.allocate_arrays(seed=1)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        assert np.allclose(arrays["x1"], ref["x1"] + ref["A"] @ ref["y1"], rtol=1e-3)
        assert np.allclose(arrays["x2"], ref["x2"] + ref["A"].T @ ref["y2"], rtol=1e-3)

    def test_syrk(self):
        f = extra.syrk(8)
        arrays = f.allocate_arrays(seed=2)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        want = ref["C"] + ref["A"] @ ref["A"].T
        assert np.allclose(arrays["C"], want, rtol=1e-3)

    def test_doitgen(self):
        f = extra.doitgen(4, 4, 4)
        arrays = f.allocate_arrays(seed=3)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        want = ref["acc"] + np.einsum("rqs,sp->rqp", ref["a"], ref["c4"])
        assert np.allclose(arrays["acc"], want, rtol=1e-3)

    def test_conv2d(self):
        f = extra.conv2d(10, 3)
        arrays = f.allocate_arrays(seed=4)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        want = ref["out"].copy().astype(np.float64)
        for i in range(8):
            for j in range(8):
                want[i, j] += (
                    ref["img"][i:i + 3, j:j + 3].astype(np.float64) * ref["kern"]
                ).sum()
        assert np.allclose(arrays["out"], want, rtol=1e-3)

    def test_trisolv_is_serial_recurrence(self):
        from repro.depgraph import analyze_compute

        f = extra.trisolv(8)
        analysis = analyze_compute(f.get_compute("S"))
        assert analysis.carried_raw(), "x feeds back across i"


class TestDseOnExtraKernels:
    KERNELS = ["atax", "mvt", "syrk", "doitgen", "conv2d"]

    @pytest.mark.parametrize("name", KERNELS)
    def test_dse_improves(self, name):
        factory = extra.EXTRA_SUITE[name]
        base = estimate(factory())
        f = factory()
        result = f.auto_DSE()
        assert result.report.total_cycles < base.total_cycles
        assert result.report.feasible()

    @pytest.mark.parametrize("name", KERNELS)
    def test_dse_preserves_semantics(self, name):
        factory = extra.EXTRA_SUITE[name]
        reference_fn = factory()
        expected = reference_fn.allocate_arrays(seed=7)
        reference_fn.reference_execute(expected)
        f = factory()
        f.auto_DSE()
        got = f.allocate_arrays(seed=7)
        interpret(lower_to_affine(f), got)
        for array in expected:
            np.testing.assert_allclose(
                got[array], expected[array], rtol=1e-3, atol=1e-5, err_msg=array
            )

    def test_trisolv_dse_does_not_break(self):
        """A fully-serial recurrence must survive the DSE unharmed."""
        reference_fn = extra.trisolv(8)
        expected = reference_fn.allocate_arrays(seed=8)
        reference_fn.reference_execute(expected)
        f = extra.trisolv(8)
        f.auto_DSE()
        got = f.allocate_arrays(seed=8)
        interpret(lower_to_affine(f), got)
        np.testing.assert_allclose(got["x"], expected["x"], rtol=1e-3, atol=1e-5)

    def test_conv2d_reduction_dims_detected(self):
        from repro.depgraph import analyze_compute

        f = extra.conv2d(16, 3)
        analysis = analyze_compute(f.get_compute("S"))
        assert set(analysis.reduction_dims) == {"r", "c"}
