"""Unit tests for the workload definitions (semantics + structure)."""

import numpy as np
import pytest

from repro.depgraph import build_dependence_graph
from repro import workloads
from repro.workloads import dnn, image, polybench, stencils


class TestPolybenchSemantics:
    def test_gemm(self):
        f = polybench.gemm(8)
        arrays = f.allocate_arrays(seed=0)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        want = ref["A"] + ref["B"] @ ref["C"]
        assert np.allclose(arrays["A"], want, rtol=1e-4)

    def test_bicg(self):
        f = polybench.bicg(8)
        arrays = f.allocate_arrays(seed=1)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        assert np.allclose(arrays["q"], ref["q"] + ref["A"] @ ref["p"], rtol=1e-4)
        assert np.allclose(arrays["s"], ref["s"] + ref["A"].T @ ref["r"], rtol=1e-4)

    def test_gesummv(self):
        f = polybench.gesummv(8)
        arrays = f.allocate_arrays(seed=2)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        tmp = ref["tmp"] + ref["A"] @ ref["x"]
        y = ref["y"] + ref["B"] @ ref["x"]
        want = tmp * np.float32(1.5) + y * np.float32(1.2)
        assert np.allclose(arrays["y"], want, rtol=1e-3)

    def test_2mm(self):
        f = polybench.mm2(8)
        arrays = f.allocate_arrays(seed=3)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        tmp = ref["tmp"] + ref["A"] @ ref["B"]
        assert np.allclose(arrays["D"], ref["D"] + tmp @ ref["C"], rtol=1e-3)

    def test_3mm(self):
        f = polybench.mm3(8)
        arrays = f.allocate_arrays(seed=4)
        ref = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(arrays)
        e = ref["E"] + ref["A"] @ ref["B"]
        g = ref["F"] + ref["C"] @ ref["D"]
        assert np.allclose(arrays["G"], ref["G"] + e @ g, rtol=1e-3)

    def test_baseline_flag_fuses_bicg(self):
        plain = polybench.bicg(8)
        fused = polybench.bicg(8, baseline=True)
        assert not plain.structural_directives()
        assert fused.structural_directives()


class TestStencilSemantics:
    def test_jacobi_1d_alternates_buffers(self):
        f = stencils.jacobi_1d(8, steps=2)
        arrays = f.allocate_arrays(seed=0)
        a = arrays["A"].copy()
        b = arrays["B"].copy()
        for _ in range(2):
            for i in range(1, 7):
                b[i] = (a[i - 1] + a[i] + a[i + 1]) * np.float32(0.33333)
            for i in range(1, 7):
                a[i] = (b[i - 1] + b[i] + b[i + 1]) * np.float32(0.33333)
        f.reference_execute(arrays)
        assert np.allclose(arrays["A"], a, rtol=1e-4)

    def test_seidel_in_place(self):
        f = stencils.seidel(6, steps=1)
        arrays = f.allocate_arrays(seed=1)
        a = arrays["A"].copy()
        for i in range(1, 5):
            for j in range(1, 5):
                a[i, j] = (
                    a[i - 1, j] + a[i + 1, j] + a[i, j - 1] + a[i, j + 1] + a[i, j]
                ) * np.float32(0.2)
        f.reference_execute(arrays)
        assert np.allclose(arrays["A"], a, rtol=1e-4)

    def test_heat_1d_updates_interior_only(self):
        f = stencils.heat_1d(8, steps=1)
        arrays = f.allocate_arrays(seed=2)
        edges = (arrays["A"][0], arrays["A"][-1])
        f.reference_execute(arrays)
        assert arrays["A"][0] == edges[0]
        assert arrays["A"][-1] == edges[1]


class TestImageStructure:
    def test_blur_two_stages(self):
        f = image.blur(16)
        graph = build_dependence_graph(f, analyze=False)
        assert {(e.src, e.dst) for e in graph.edges} == {("Sh", "Sv")}

    def test_edge_detect_diamond(self):
        f = image.edge_detect(16)
        graph = build_dependence_graph(f, analyze=False)
        edges = {(e.src, e.dst) for e in graph.edges}
        assert ("Ssm", "Sgx") in edges and ("Ssm", "Sgy") in edges
        assert ("Sgx", "Smag") in edges and ("Sgy", "Smag") in edges
        assert len(graph.data_paths()) == 2

    def test_gaussian_separable_semantics(self):
        f = image.gaussian(12)
        arrays = f.allocate_arrays(seed=3)
        img = arrays["img"].astype(np.float64)
        kernel = np.array([0.0625, 0.25, 0.375, 0.25, 0.0625])
        tmp = arrays["tmp"].astype(np.float64)
        out = arrays["out"].astype(np.float64)
        for i in range(2, 10):
            for j in range(2, 10):
                tmp[i, j] = sum(kernel[d + 2] * img[i, j + d] for d in range(-2, 3))
        for i in range(2, 10):
            for j in range(2, 10):
                out[i, j] = sum(kernel[d + 2] * tmp[i + d, j] for d in range(-2, 3))
        f.reference_execute(arrays)
        assert np.allclose(arrays["out"], out, rtol=1e-3)


class TestDnnStructure:
    def test_vgg16_critical_loop_count(self):
        f = dnn.vgg16(size=4, channel_scale=0.1)
        assert len(dnn.critical_loops(f)) == 13

    def test_resnet18_critical_loop_count(self):
        """Paper: 20 critical loops = 17 convolutions + 3 residuals."""
        f = dnn.resnet18(size=4, channel_scale=0.1)
        critical = dnn.critical_loops(f)
        assert len(critical) == 20
        convs = [c for c in critical if c.startswith("conv")]
        residuals = [c for c in critical if c.startswith("res")]
        assert len(convs) == 17
        assert len(residuals) == 3

    def test_conv_semantics(self):
        f = dnn.vgg16(size=4, channel_scale=0.05)
        first = f.computes[0]
        arrays = f.allocate_arrays(seed=5)
        ref = {k: v.copy() for k, v in arrays.items()}
        first.reference_execute(arrays)
        src = ref["input"].astype(np.float64)
        wgt = ref["conv1_w"].astype(np.float64)
        out = ref["conv1_out"].astype(np.float64)
        co, ci, kh, kw = wgt.shape
        for o in range(co):
            for h in range(4):
                for w in range(4):
                    acc = out[o, h, w]
                    for c in range(ci):
                        for r in range(kh):
                            for s in range(kw):
                                acc += src[c, h + r, w + s] * wgt[o, c, r, s]
                    out[o, h, w] = acc
        assert np.allclose(arrays["conv1_out"], out, rtol=1e-3)

    def test_channel_scale(self):
        small = dnn.vgg16(size=4, channel_scale=0.125)
        convs = [c for c in small.computes]
        last = convs[-1]
        co_iter = last.iters[0]
        assert co_iter.extent == 64  # 512 * 0.125


class TestSuiteRegistries:
    def test_all_suites_nonempty(self):
        for name, suite_names in workloads.suites().items():
            assert suite_names, name

    def test_factories_produce_fresh_functions(self):
        f1 = polybench.gemm(8)
        f2 = polybench.gemm(8)
        assert f1 is not f2
        assert f1.computes[0] is not f2.computes[0]


class TestWorkloadRegistry:
    """The `repro.workloads.get/names/kind_of` front door."""

    def test_get_builds_by_name(self):
        function = workloads.get("gemm", 8)
        assert function.name == "gemm"

    def test_get_default_size(self):
        assert workloads.get("gemm") is not None

    def test_names_sorted_and_complete(self):
        names = workloads.names()
        assert names == tuple(sorted(names))
        assert "gemm" in names and "image-pipeline" in names

    def test_names_kind_filter(self):
        functions = workloads.names(kind="function")
        dataflow = workloads.names(kind="dataflow")
        assert "gemm" in functions and "gemm" not in dataflow
        assert "image-pipeline" in dataflow
        assert set(functions) | set(dataflow) == set(workloads.names())
        assert not set(functions) & set(dataflow)

    def test_names_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            workloads.names(kind="nope")

    def test_kind_of(self):
        assert workloads.kind_of("gemm") == "function"
        assert workloads.kind_of("image-pipeline") == "dataflow"

    def test_unknown_name_is_wld001(self):
        from repro.diagnostics import DiagnosticError

        with pytest.raises(DiagnosticError, match="unknown workload") as excinfo:
            workloads.get("gemn", 8)
        assert excinfo.value.diagnostic.code == "WLD001"
        # the typo hint and the full listing both appear
        assert "did you mean" in str(excinfo.value)
        assert "gemm" in str(excinfo.value)

    def test_wld001_is_a_valueerror(self):
        # pre-registry callers caught ValueError/KeyError; the registry's
        # DiagnosticError must keep matching the ValueError handlers.
        with pytest.raises(ValueError):
            workloads.kind_of("nope")

    @pytest.mark.parametrize("size", [0, -3, True, 2.5, "8"])
    def test_bad_size_is_wld002(self, size):
        from repro.diagnostics import DiagnosticError

        with pytest.raises(DiagnosticError) as excinfo:
            workloads.get("gemm", size)
        assert excinfo.value.diagnostic.code == "WLD002"

    def test_unbuildable_size_is_wld002(self):
        from repro.diagnostics import DiagnosticError

        # image-pipeline requires n >= 8; the builder's ValueError is
        # wrapped with the workload name and the stable code.
        with pytest.raises(DiagnosticError, match="image-pipeline") as excinfo:
            workloads.get("image-pipeline", 4)
        assert excinfo.value.diagnostic.code == "WLD002"

    def test_all_suites_shim_warns(self):
        with pytest.warns(DeprecationWarning, match="ALL_SUITES"):
            legacy = workloads.ALL_SUITES
        assert "polybench" in legacy
        assert "dataflow" not in legacy  # function-kind suites only
        assert "gemm" in legacy["polybench"]
