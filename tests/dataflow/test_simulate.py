"""Dataflow simulation: compiled per-stage kernels are bit-identical to
the DSL reference execution, and the stream-buffer protocol is strict."""

import numpy as np
import pytest

from repro import workloads
from repro.dataflow.simulate import StreamBuffer, reference_execute_design
from repro.dsl.serialize import schedule_from_dict

pytestmark = pytest.mark.dataflow

DATAFLOW_NAMES = workloads.names(kind="dataflow")


class TestBitIdentity:
    @pytest.mark.parametrize("name", DATAFLOW_NAMES)
    @pytest.mark.parametrize("size", [8, 12])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_simulate_matches_reference(self, name, size, seed):
        design = workloads.get(name, size)
        reference = design.allocate_arrays(seed=seed)
        design.reference_execute(reference)

        simulated = workloads.get(name, size).allocate_arrays(seed=seed)
        workloads.get(name, size).simulate(simulated)

        assert set(reference) == set(simulated)
        for array in sorted(reference):
            assert np.array_equal(reference[array], simulated[array]), array

    @pytest.mark.parametrize("name", DATAFLOW_NAMES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_scheduled_stage_is_still_bit_identical(self, name, seed):
        import random

        from repro.fuzz.generator import random_schedule
        from repro.dsl.serialize import schedule_to_dict

        probe = workloads.get(name, 8)
        stage_name = probe.topo_order()[0].name
        random_schedule(
            probe.stages[stage_name].function,
            random.Random(seed),
            max_directives=4,
        )
        schedule = schedule_to_dict(probe.stages[stage_name].function)

        def _build():
            design = workloads.get(name, 8)
            schedule_from_dict(design.stages[stage_name].function, schedule)
            return design

        reference = _build().allocate_arrays(seed=3)
        _build().reference_execute(reference)
        simulated = _build().allocate_arrays(seed=3)
        _build().simulate(simulated)
        for array in sorted(reference):
            assert np.array_equal(reference[array], simulated[array]), array


class TestStreamSemantics:
    def test_stream_arrays_allocate_zeroed(self):
        design = workloads.get("image-pipeline", 8)
        arrays = design.allocate_arrays(seed=0)
        for array in design.stream_arrays():
            assert not arrays[array].any(), array
        assert arrays["img"].any()

    def test_reference_mutates_caller_buffers(self):
        design = workloads.get("image-pipeline", 8)
        arrays = design.allocate_arrays(seed=0)
        reference_execute_design(design, arrays)
        assert arrays["mag"].any()
        assert arrays["sm"].any()  # stream contents visible for inspection

    def test_simulate_missing_external_raises(self):
        design = workloads.get("image-pipeline", 8)
        arrays = design.allocate_arrays(seed=0)
        del arrays["img"]
        with pytest.raises(KeyError, match="img"):
            design.simulate(arrays)


class TestStreamBuffer:
    def test_push_pop_round_trip(self):
        buffer = StreamBuffer("a")
        frame = np.arange(6, dtype=np.float32).reshape(2, 3)
        buffer.push(frame)
        out = buffer.pop((2, 3))
        assert np.array_equal(out, frame)
        assert out is not frame  # copies, never aliases

    def test_double_push_raises(self):
        buffer = StreamBuffer("a")
        buffer.push(np.zeros(2, dtype=np.float32))
        with pytest.raises(RuntimeError, match="twice"):
            buffer.push(np.zeros(2, dtype=np.float32))

    def test_pop_before_push_raises(self):
        buffer = StreamBuffer("a")
        with pytest.raises(RuntimeError, match="before"):
            buffer.pop((2,))

    def test_double_pop_raises(self):
        buffer = StreamBuffer("a")
        buffer.push(np.zeros(2, dtype=np.float32))
        buffer.pop((2,))
        with pytest.raises(RuntimeError, match="twice"):
            buffer.pop((2,))
