"""DataflowDesign construction and the DFL00x validation contract."""

import pytest

from repro.dataflow import DataflowDesign, Pipeline
from repro.diagnostics import DiagnosticError
from repro.dsl import Function, compute, p_float32, placeholder, var
from repro.workloads.dataflow import conv_block, image_pipeline

pytestmark = pytest.mark.dataflow

N = 8


def _producer(out="a", shape=(N,)):
    with Function("prod") as f:
        i = var("i", 0, shape[0])
        x = placeholder("x", shape, p_float32)
        a = placeholder(out, shape, p_float32)
        compute("Sp", [i], x(i) * 2.0, a(i))
    return f


def _consumer(inp="a", shape=(N,)):
    with Function("cons") as f:
        i = var("i", 0, shape[0])
        a = placeholder(inp, shape, p_float32)
        y = placeholder("y", shape, p_float32)
        compute("Sc", [i], a(i) + 1.0, y(i))
    return f


def _two_stage():
    p = Pipeline("pipe")
    p.add_stage(_producer())
    p.add_stage(_consumer())
    p.stream("prod", "cons", "a")
    return p


def _code(excinfo) -> str:
    return excinfo.value.diagnostic.code


class TestPipelineBuilder:
    def test_build_valid_two_stage(self):
        design = _two_stage().build()
        assert isinstance(design, DataflowDesign)
        assert list(design.stages) == ["prod", "cons"]
        assert design.stream_arrays() == ("a",)
        assert set(design.external_arrays()) == {"x", "y"}
        assert [s.name for s in design.topo_order()] == ["prod", "cons"]

    def test_stage_name_defaults_to_function_name(self):
        p = Pipeline("pipe")
        p.add_stage(_producer(), name="first")
        assert p._stages[0].name == "first"

    def test_duplicate_stage_name(self):
        p = Pipeline("pipe")
        p.add_stage(_producer())
        with pytest.raises(ValueError, match="duplicate stage"):
            p.add_stage(_producer())

    def test_non_function_stage(self):
        with pytest.raises(TypeError, match="expects a Function"):
            Pipeline("pipe").add_stage(object())

    def test_invalid_design_name(self):
        with pytest.raises(ValueError, match="invalid design name"):
            Pipeline("not a name")

    def test_builder_chains(self):
        p = Pipeline("pipe")
        assert p.add_stage(_producer()) is p
        assert p.stream("prod", "cons", "a") is p


class TestValidation:
    def test_dfl001_unknown_stage(self):
        p = Pipeline("pipe")
        p.add_stage(_producer())
        p.add_stage(_consumer())
        p.stream("prod", "nope", "a")
        with pytest.raises(DiagnosticError, match="unknown stage") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL001"

    def test_dfl002_not_written_by_producer(self):
        p = Pipeline("pipe")
        p.add_stage(_producer())
        p.add_stage(_consumer())
        p.stream("cons", "prod", "a")  # backwards: cons never writes a
        with pytest.raises(DiagnosticError, match="not written") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL002"

    def test_dfl002_not_read_by_consumer(self):
        with Function("prod") as two_out:
            i = var("i", 0, N)
            x = placeholder("x", (N,), p_float32)
            a = placeholder("a", (N,), p_float32)
            b = placeholder("b", (N,), p_float32)
            compute("Sa", [i], x(i) * 2.0, a(i))
            compute("Sb", [i], x(i) * 3.0, b(i))
        p = Pipeline("pipe")
        p.add_stage(two_out)
        p.add_stage(_consumer(inp="a"))
        p.stream("prod", "cons", "b")  # cons reads a, never b
        with pytest.raises(DiagnosticError, match="not read") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL002"

    def test_dfl003_shape_disagreement(self):
        p = Pipeline("pipe")
        p.add_stage(_producer(shape=(N,)))
        p.add_stage(_consumer(shape=(N * 2,)))
        p.stream("prod", "cons", "a")
        with pytest.raises(DiagnosticError, match="disagrees") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL003"

    def test_dfl004_cycle(self):
        def _stage(name, inp, out):
            with Function(name) as f:
                i = var("i", 0, N)
                a = placeholder(inp, (N,), p_float32)
                b = placeholder(out, (N,), p_float32)
                compute("S" + name, [i], a(i) + 1.0, b(i))
            return f

        p = Pipeline("pipe")
        p.add_stage(_stage("f", "b", "a"))
        p.add_stage(_stage("g", "a", "b"))
        p.stream("f", "g", "a")
        p.stream("g", "f", "b")
        with pytest.raises(DiagnosticError, match="cycle") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL004"

    def test_dfl005_two_edges_one_array(self):
        p = Pipeline("pipe")
        p.add_stage(_producer())
        p.add_stage(_consumer(), name="c1")
        p.add_stage(_consumer(), name="c2")
        p.stream("prod", "c1", "a")
        p.stream("prod", "c2", "a")
        with pytest.raises(DiagnosticError, match="exactly one") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL005"

    def test_dfl005_extra_reader_beyond_edge(self):
        p = Pipeline("pipe")
        p.add_stage(_producer())
        p.add_stage(_consumer(), name="c1")
        p.add_stage(_consumer(), name="c2")
        p.stream("prod", "c1", "a")  # c2 also reads a, undeclared
        with pytest.raises(DiagnosticError, match="extra") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL005"

    def test_dfl007_declared_depth_below_one(self):
        p = _two_stage()
        p._edges[0].depth = 0
        with pytest.raises(DiagnosticError, match="depth") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL007"

    def test_dfl008_undeclared_inter_stage_traffic(self):
        p = Pipeline("pipe")
        p.add_stage(_producer())
        p.add_stage(_consumer())  # reads a, no stream edge declared
        with pytest.raises(DiagnosticError, match="no stream edge") as excinfo:
            p.build()
        assert _code(excinfo) == "DFL008"

    def test_dfl006_border_read_is_a_warning_not_an_error(self):
        design = conv_block(8)  # pool reads act's zero border by design
        codes = [w.code for w in design.warnings]
        assert "DFL006" in codes

    def test_image_pipeline_clean(self):
        design = image_pipeline(8)
        # grad reads sm rows/cols 0..n-1 while smooth writes 1..n-2;
        # that border read is the one expected DFL006 finding.
        assert all(w.code == "DFL006" for w in design.warnings)


class TestVerify:
    def test_verify_clean_design(self):
        engine = _two_stage().build().verify()
        assert not engine.has_errors

    def test_verify_collects_structural_error(self):
        p = Pipeline("pipe")
        p.add_stage(_producer())
        p.add_stage(_consumer())
        design = DataflowDesign("pipe", list(p._stages), [])  # skip build()
        engine = design.verify()
        assert engine.has_errors
        assert any(d.code == "DFL008" for d in engine.diagnostics)

    def test_verify_includes_dfl006_warnings(self):
        engine = conv_block(8).verify()
        assert not engine.has_errors
        assert any(d.code == "DFL006" for d in engine.diagnostics)
