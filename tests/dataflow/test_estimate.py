"""FIFO depth model, stall factor, and dataflow report composition."""

import math

import pytest

from repro.dataflow import FifoSpec, estimate_design, fifo_min_depth, resolve_depths
from repro.dataflow.estimate import SRL_LIMIT_BITS, stall_factor
from repro.diagnostics import DiagnosticError
from repro.hls.device import DEFAULT_DEVICE, get_device
from repro.workloads.dataflow import conv_block, image_pipeline

pytestmark = pytest.mark.dataflow


class TestFifoMinDepth:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_line_buffer_window(self, n):
        # grad reads sm over a 3x3 window (i+-1, j+-1): spans (2, 2),
        # row-major strides (n, 1) -> 2n + 2 + 1 slots.
        design = image_pipeline(n)
        assert fifo_min_depth(design, design.edge_for("sm")) == 2 * n + 3

    def test_pointwise_channel_is_depth_two(self):
        design = image_pipeline(8)
        assert fifo_min_depth(design, design.edge_for("gx")) == 2
        assert fifo_min_depth(design, design.edge_for("gy")) == 2

    @pytest.mark.parametrize("n", [8, 16])
    def test_strided_read_degrades_to_full_frame(self, n):
        # pool reads act(2i, 2j): not a constant-offset window, so the
        # channel must buffer the whole n x n frame (ping-pong).
        design = conv_block(n)
        assert fifo_min_depth(design, design.edge_for("act")) == n * n

    def test_pointwise_conv_channel(self):
        design = conv_block(8)
        assert fifo_min_depth(design, design.edge_for("cv")) == 2


class TestResolveDepths:
    def test_defaults_to_minimum(self):
        design = image_pipeline(8)
        depths = {f.array: f.depth for f in resolve_depths(design)}
        assert depths == {"sm": 19, "gx": 2, "gy": 2}

    def test_override_above_minimum(self):
        design = image_pipeline(8)
        specs = resolve_depths(design, depths={"sm": 64})
        sm = next(f for f in specs if f.array == "sm")
        assert sm.depth == 64 and sm.min_depth == 19

    def test_dfl007_below_minimum(self):
        design = image_pipeline(8)
        with pytest.raises(DiagnosticError, match="deadlock-free") as excinfo:
            resolve_depths(design, depths={"sm": 4})
        assert excinfo.value.diagnostic.code == "DFL007"

    def test_edge_declared_depth_respected(self):
        design = image_pipeline(8)
        design.edge_for("sm").depth = 32
        specs = resolve_depths(design)
        assert next(f for f in specs if f.array == "sm").depth == 32


class TestFifoResources:
    def test_small_channel_uses_srl_luts(self):
        fifo = FifoSpec("a", "p", "c", width_bits=32, depth=2, min_depth=2)
        resources = fifo.resources()
        assert resources.bram_bits == 0
        assert resources.lut > 0

    def test_large_channel_uses_bram(self):
        depth = SRL_LIMIT_BITS // 32 + 1
        fifo = FifoSpec("a", "p", "c", width_bits=32, depth=depth, min_depth=2)
        resources = fifo.resources()
        assert resources.bram_bits == depth * 32


class TestStallFactor:
    def test_at_minimum_depth(self):
        fifos = [FifoSpec("a", "p", "c", 32, depth=8, min_depth=8)]
        assert stall_factor(fifos) == pytest.approx(1.25)

    def test_deep_fifos_approach_one(self):
        fifos = [FifoSpec("a", "p", "c", 32, depth=800, min_depth=8)]
        assert stall_factor(fifos) == pytest.approx(1.0025)

    def test_no_fifos(self):
        assert stall_factor([]) == 1.0


class TestEstimateDesign:
    def test_report_shape(self):
        design = image_pipeline(8)
        report = design.estimate()
        assert set(report.stage_reports) == {"smooth", "grad", "mag"}
        slowest = max(r.total_cycles for r in report.stage_reports.values())
        expected = int(math.ceil(slowest * stall_factor(report.fifos)))
        assert report.total_cycles == expected
        assert report.latency_cycles == sum(
            r.total_cycles for r in report.stage_reports.values()
        )
        assert report.total_cycles < report.latency_cycles

    def test_duck_types_synthesis_report(self):
        report = image_pipeline(8).estimate()
        # The Pareto machinery reads exactly these:
        assert report.total_cycles > 0
        assert report.interval_cycles == report.total_cycles
        assert report.resources.dsp > 0
        assert report.function_name == "image_pipeline"
        assert report.power_w > 0

    def test_resources_include_fifo_costs(self):
        design = conv_block(8)
        report = design.estimate()
        stage_sum = sum(
            (r.resources for r in report.stage_reports.values()),
            start=type(report.resources)(),
        )
        # act buffers a full 8x8 frame of float32: 2048 bits of BRAM
        # beyond whatever the stages themselves banked.
        assert report.resources.bram_bits >= stage_sum.bram_bits + 2048

    def test_bottleneck_and_summary(self):
        report = image_pipeline(8).estimate()
        assert report.bottleneck() in report.stage_reports
        text = report.summary()
        assert "image_pipeline" in text and "bottleneck" in text

    def test_device_override(self):
        design = image_pipeline(8)
        default = design.estimate()
        # Pin the clock so only the part (and its budgets) changes:
        # cycle counts depend on the clock target, not the device size.
        big = design.estimate(
            device=get_device("xczu9eg"), clock_ns=DEFAULT_DEVICE.clock_ns
        )
        assert default.device.name == DEFAULT_DEVICE.name
        assert big.device.name == "xczu9eg"
        assert big.total_cycles == default.total_cycles
        assert big.device.bram_bits > default.device.bram_bits

    def test_depth_overrides_trade_bram_for_interval(self):
        design = image_pipeline(8)
        shallow = estimate_design(design)
        deep = estimate_design(design, depths={"sm": 19 * 4, "gx": 8, "gy": 8})
        assert deep.total_cycles <= shallow.total_cycles
        assert deep.resources.bram_bits >= shallow.resources.bram_bits
