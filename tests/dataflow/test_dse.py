"""Joint dataflow DSE: balancing, composed frontiers, checkpoint/resume."""

import json
import os

import pytest

from repro import workloads
from repro.dataflow import auto_dse_dataflow, generate_dataflow_hls_c
from repro.dse.options import DseOptions

pytestmark = pytest.mark.dataflow

#: Tight enough that the naive even split visibly starves the bottleneck.
TIGHT = DseOptions(resource_fraction=0.25)


@pytest.fixture(scope="module")
def tight_result():
    return workloads.get("image-pipeline", 16).auto_DSE(options=TIGHT)


class TestBalancing:
    def test_balanced_beats_naive_under_tight_budget(self, tight_result):
        assert tight_result.balanced_speedup > 1.0
        assert (
            tight_result.report.total_cycles
            < tight_result.naive_report.total_cycles
        )

    def test_selection_covers_every_stage(self, tight_result):
        assert set(tight_result.selection) == {"smooth", "grad", "mag"}
        assert set(tight_result.naive_selection) == set(tight_result.selection)

    def test_fits_the_scaled_budget(self, tight_result):
        budget = TIGHT.resolved_device().scaled(0.25)
        used = tight_result.report.resources
        assert used.dsp <= budget.dsp
        assert used.lut <= budget.lut
        assert used.bram_bits <= budget.bram_bits

    def test_realized_reports_match_selected_points(self, tight_result):
        # Realization replays each selected (parallelism, bank_cap)
        # exactly, so the real estimate reproduces the frontier scalars.
        for name, point in tight_result.selection.items():
            assert (
                tight_result.report.stage_reports[name].total_cycles
                == point.cycles
            ), name

    def test_evaluations_accumulate_across_stages(self, tight_result):
        assert tight_result.evaluations == sum(
            r.evaluations for r in tight_result.stage_results.values()
        )
        assert tight_result.evaluations > 0
        assert not tight_result.quarantine


class TestComposedFrontier:
    def test_frontier_spans_multiple_stages(self, tight_result):
        assert len(tight_result.frontier) >= 2
        for point in tight_result.frontier:
            prefixes = {key.split(".")[0] for key, _ in point.parallelism}
            assert len(prefixes) >= 2, point.key

    def test_frontier_keys_name_stage_points_and_depths(self, tight_result):
        assert any("@d" in point.key for point in tight_result.frontier)
        assert all("+" in point.key for point in tight_result.frontier)

    def test_pareto_objective_flows_through(self):
        # Exercise the functional entry point alongside the method.
        result = auto_dse_dataflow(
            workloads.get("conv-block", 8),
            options=DseOptions(objective="pareto"),
        )
        assert result.objective.startswith("pareto")
        assert result.frontier

    def test_payload_is_json_safe(self, tight_result):
        payload = tight_result.payload()
        round_trip = json.loads(json.dumps(payload))
        assert round_trip["design"] == "image_pipeline"
        assert round_trip["balanced_speedup"] > 1.0
        assert round_trip["stages"].keys() == {"smooth", "grad", "mag"}
        assert len(round_trip["frontier"]) == len(tight_result.frontier)


class TestRealization:
    def test_schedules_left_installed_for_codegen(self):
        design = workloads.get("image-pipeline", 16)
        baseline = generate_dataflow_hls_c(design)
        result = design.auto_DSE(options=TIGHT)
        optimized = generate_dataflow_hls_c(design)
        # The balanced design parallelizes at least one stage, which
        # must be visible in the emitted HLS C (partition/unroll).
        assert optimized != baseline
        assert any(
            degree > 1
            for point in result.selection.values()
            for _, degree in point.parallelism
        )


class TestCheckpointResume:
    def test_journals_fan_out_per_stage(self, tmp_path):
        journal = str(tmp_path / "design.journal")
        design = workloads.get("conv-block", 8)
        design.auto_DSE(options=DseOptions(
            resource_fraction=0.25, checkpoint=journal,
        ))
        for stage in ("conv", "relu", "pool"):
            assert os.path.exists(f"{journal}.{stage}"), stage

    def test_resume_is_bit_identical(self, tmp_path):
        journal = str(tmp_path / "design.journal")
        options = DseOptions(resource_fraction=0.25, checkpoint=journal)
        cold = workloads.get("conv-block", 8).auto_DSE(options=options)
        resumed = workloads.get("conv-block", 8).auto_DSE(
            options=options.replace(resume=True)
        )
        cold_payload = cold.payload()
        resumed_payload = resumed.payload()
        # Resume replays the journal instead of re-estimating; the
        # outcome must be indistinguishable.
        assert resumed_payload == cold_payload
        assert any(
            r.stats is not None and r.stats.replayed
            for r in resumed.stage_results.values()
        )

    def test_resume_without_journals_still_runs(self, tmp_path):
        journal = str(tmp_path / "never-written.journal")
        result = workloads.get("conv-block", 8).auto_DSE(
            options=DseOptions(
                resource_fraction=0.25, checkpoint=journal, resume=True,
            )
        )
        assert result.report.total_cycles > 0
