"""HLS C generation for dataflow designs: pragmas, streams, structure."""

import pytest

from repro.dataflow import generate_dataflow_hls_c
from repro.workloads.dataflow import conv_block, image_pipeline

pytestmark = pytest.mark.dataflow


class TestImagePipelineCodegen:
    @pytest.fixture(scope="class")
    def code(self):
        return generate_dataflow_hls_c(image_pipeline(8))

    def test_dataflow_pragma_in_wrapper(self, code):
        assert "#pragma HLS dataflow" in code

    def test_stream_declarations(self, code):
        assert "#include <hls_stream.h>" in code
        for array in ("sm", "gx", "gy"):
            assert f"static hls::stream<float> {array}_s;" in code

    def test_depth_pragmas_use_minimums(self, code):
        assert "#pragma HLS stream variable=sm_s depth=19" in code
        assert "#pragma HLS stream variable=gx_s depth=2" in code
        assert "#pragma HLS stream variable=gy_s depth=2" in code

    def test_one_subfunction_per_stage(self, code):
        for stage in ("smooth", "grad", "mag"):
            assert f"static void image_pipeline_{stage}(" in code

    def test_wrapper_takes_only_externals(self, code):
        wrapper = code[code.index("void image_pipeline("):]
        signature = wrapper[:wrapper.index(")")]
        assert "img" in signature and "mag" in signature
        assert "sm" not in signature and "hls::stream" not in signature

    def test_stream_io_uses_read_write(self, code):
        assert ".read()" in code and ".write(" in code

    def test_stages_called_in_topo_order(self, code):
        wrapper = code[code.index("void image_pipeline("):]
        assert (
            wrapper.index("image_pipeline_smooth(")
            < wrapper.index("image_pipeline_grad(")
            < wrapper.index("image_pipeline_mag(")
        )


class TestConvBlockCodegen:
    def test_both_channel_kinds_emit(self):
        code = generate_dataflow_hls_c(conv_block(8))
        assert "#pragma HLS dataflow" in code
        assert "#pragma HLS stream variable=cv_s depth=2" in code
        # act degrades to a full 8x8 ping-pong frame
        assert "#pragma HLS stream variable=act_s depth=64" in code

    def test_depth_overrides_change_pragmas(self):
        code = generate_dataflow_hls_c(conv_block(8), depths={"cv": 16})
        assert "#pragma HLS stream variable=cv_s depth=16" in code
