"""Unit tests for basic integer sets and Fourier-Motzkin projection."""

import pytest

from repro.isl.affine import AffineExpr
from repro.isl.constraint import Constraint
from repro.isl.sets import BasicSet, LoopBound

e = AffineExpr


class TestConstruction:
    def test_box(self):
        s = BasicSet.box({"i": (0, 3), "j": (1, 2)})
        assert s.contains({"i": 0, "j": 1})
        assert s.contains({"i": 3, "j": 2})
        assert not s.contains({"i": 4, "j": 1})
        assert not s.contains({"i": 0, "j": 0})

    def test_universe(self):
        s = BasicSet.universe(["i"])
        assert s.contains({"i": 10 ** 9})

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            BasicSet(["i", "i"])

    def test_unknown_dim_in_constraint_rejected(self):
        with pytest.raises(ValueError):
            BasicSet(["i"], [Constraint.ge("j", 0)])

    def test_tautologies_dropped(self):
        s = BasicSet(["i"], [Constraint.ge(1, 0)])
        assert len(s.constraints) == 0

    def test_duplicate_constraints_dropped(self):
        s = BasicSet(["i"], [Constraint.ge("i", 0), Constraint.ge("i", 0)])
        assert len(s.constraints) == 1


class TestOperations:
    def test_intersect(self):
        a = BasicSet.box({"i": (0, 10)})
        b = BasicSet.box({"i": (5, 20)})
        both = a.intersect(b)
        assert both.contains({"i": 7})
        assert not both.contains({"i": 3})
        assert not both.contains({"i": 12})

    def test_intersect_dim_mismatch(self):
        with pytest.raises(ValueError):
            BasicSet.box({"i": (0, 1)}).intersect(BasicSet.box({"j": (0, 1)}))

    def test_rename_dims(self):
        s = BasicSet.box({"i": (0, 3)}).rename_dims({"i": "x"})
        assert s.dims == ("x",)
        assert s.contains({"x": 2})

    def test_reorder_dims(self):
        s = BasicSet.box({"i": (0, 1), "j": (0, 2)}, order=["i", "j"])
        r = s.reorder_dims(["j", "i"])
        assert r.dims == ("j", "i")
        assert r.contains({"i": 1, "j": 2})

    def test_reorder_rejects_non_permutation(self):
        s = BasicSet.box({"i": (0, 1)})
        with pytest.raises(ValueError):
            s.reorder_dims(["i", "j"])

    def test_substitute_dim_split(self):
        # i in [0,31], i = 4*i0 + i1, 0 <= i1 <= 3
        s = BasicSet.box({"i": (0, 31)})
        t = s.substitute_dim(
            "i", e.var("i0") * 4 + e.var("i1"), ["i0", "i1"],
            extra=[Constraint.ge("i1", 0), Constraint.le("i1", 3)],
        )
        assert t.count_points() == 32
        lo, hi = t.constant_bounds("i0")
        assert (lo, hi) == (0, 7)

    def test_substitute_dim_skew(self):
        # j' = i + j over the 4x4 box; points preserved.
        s = BasicSet.box({"i": (0, 3), "j": (0, 3)})
        t = s.substitute_dim("j", e.var("jp") - e.var("i"), ["i", "jp"])
        assert t.count_points() == 16
        lo, hi = t.constant_bounds("jp")
        assert (lo, hi) == (0, 6)

    def test_add_dims(self):
        s = BasicSet.box({"i": (0, 1)}).add_dims(["k"])
        assert s.dims == ("i", "k")
        assert s.contains({"i": 0, "k": 99})


class TestProjection:
    def test_drop_dim_simple(self):
        s = BasicSet.box({"i": (0, 3), "j": (0, 5)})
        p = s.drop_dim("j")
        assert p.dims == ("i",)
        assert p.constant_bounds("i") == (0, 3)

    def test_drop_dim_coupled(self):
        # i + j <= 5, 0 <= i, 0 <= j  -> projecting j gives 0 <= i <= 5
        s = BasicSet(
            ["i", "j"],
            [Constraint.ge("i", 0), Constraint.ge("j", 0),
             Constraint.le(e.var("i") + e.var("j"), 5)],
        )
        p = s.drop_dim("j")
        assert p.constant_bounds("i") == (0, 5)

    def test_projection_matches_enumeration(self):
        s = BasicSet(
            ["i", "j"],
            [Constraint.ge("i", 0), Constraint.le("i", 6),
             Constraint.ge("j", e.var("i")), Constraint.le("j", 8)],
        )
        projected = s.drop_dim("j")
        shadow = {p["i"] for p in s.points()}
        for i in range(-2, 10):
            assert projected.contains({"i": i}) == (i in shadow)

    def test_project_onto(self):
        s = BasicSet.box({"i": (0, 3), "j": (0, 4), "k": (0, 5)})
        p = s.project_onto(["k", "i"])
        assert p.dims == ("k", "i")
        assert p.count_points() == 24

    def test_equality_substitution_in_elimination(self):
        # j == i + 1, 0 <= i <= 3, j <= 3 -> i <= 2
        s = BasicSet(
            ["i", "j"],
            [Constraint.eq("j", e.var("i") + 1), Constraint.ge("i", 0),
             Constraint.le("i", 3), Constraint.le("j", 3)],
        )
        p = s.drop_dim("j")
        assert p.constant_bounds("i") == (0, 2)


class TestEmptiness:
    def test_nonempty_box(self):
        assert not BasicSet.box({"i": (0, 0)}).is_empty()

    def test_empty_box(self):
        assert BasicSet.box({"i": (3, 1)}).is_empty()

    def test_empty_by_coupling(self):
        s = BasicSet(
            ["i", "j"],
            [Constraint.ge("i", 0), Constraint.le("i", 3),
             Constraint.ge("j", e.var("i") + 10), Constraint.le("j", 5)],
        )
        assert s.is_empty()

    def test_empty_by_gcd(self):
        # 2i == 1: rationally feasible, integrally empty.
        s = BasicSet(["i"], [Constraint.eq(e.var("i") * 2, 1)])
        assert s.is_empty()

    def test_tight_single_point(self):
        s = BasicSet.box({"i": (5, 5)})
        assert not s.is_empty()
        assert s.count_points() == 1

    def test_unbounded_nonempty(self):
        assert not BasicSet(["i"], [Constraint.ge("i", 0)]).is_empty()


class TestBounds:
    def test_dim_bounds_constant(self):
        s = BasicSet.box({"i": (2, 9)})
        lowers, uppers = s.dim_bounds("i")
        assert [b.evaluate({}) for b in lowers] == [2]
        assert [b.evaluate({}) for b in uppers] == [9]

    def test_dim_bounds_parametric(self):
        # i <= j <= 7 with context i
        s = BasicSet(
            ["i", "j"],
            [Constraint.ge("j", e.var("i")), Constraint.le("j", 7),
             Constraint.ge("i", 0), Constraint.le("i", 7)],
        )
        lowers, uppers = s.dim_bounds("j", context=["i"])
        lower_exprs = {(b.expr, b.divisor) for b in lowers}
        assert (e.var("i"), 1) in lower_exprs

    def test_dim_bounds_with_divisor(self):
        # 3*i >= j, i <= 5 -> lower bound ceil(j/3)
        s = BasicSet(
            ["j", "i"],
            [Constraint.ge(e.var("i") * 3, e.var("j")), Constraint.le("i", 5)],
        )
        lowers, _ = s.dim_bounds("i", context=["j"])
        assert any(b.divisor == 3 for b in lowers)
        b = next(b for b in lowers if b.divisor == 3)
        assert b.evaluate({"j": 4}) == 2  # ceil(4/3)

    def test_constant_bounds_none_when_unbounded(self):
        s = BasicSet(["i"], [Constraint.ge("i", 0)])
        assert s.constant_bounds("i") == (0, None)


class TestEnumeration:
    def test_points_of_triangle(self):
        s = BasicSet(
            ["i", "j"],
            [Constraint.ge("i", 0), Constraint.le("i", 3),
             Constraint.ge("j", 0), Constraint.le("j", e.var("i"))],
        )
        points = list(s.points())
        assert len(points) == 10  # 1+2+3+4

    def test_points_unbounded_raises(self):
        with pytest.raises(ValueError):
            list(BasicSet(["i"], [Constraint.ge("i", 0)]).points())

    def test_points_limit(self):
        s = BasicSet.box({"i": (0, 99), "j": (0, 99)})
        with pytest.raises(ValueError):
            list(s.points(limit=100))

    def test_sample_nonempty(self):
        s = BasicSet.box({"i": (3, 7), "j": (-2, -1)})
        point = s.sample()
        assert point is not None
        assert s.contains(point)

    def test_sample_empty(self):
        assert BasicSet.box({"i": (5, 2)}).sample() is None


class TestLoopBound:
    def test_lower_is_ceil(self):
        b = LoopBound(e.var("n"), 4, is_lower=True)
        assert b.evaluate({"n": 5}) == 2
        assert b.evaluate({"n": 8}) == 2
        assert b.evaluate({"n": -5}) == -1

    def test_upper_is_floor(self):
        b = LoopBound(e.var("n"), 4, is_lower=False)
        assert b.evaluate({"n": 5}) == 1
        assert b.evaluate({"n": -5}) == -2

    def test_common_factor_reduced(self):
        b = LoopBound(e.var("n") * 2 + 4, 2, is_lower=False)
        assert b.divisor == 1
        assert b.expr == e.var("n") + 2

    def test_nonpositive_divisor_rejected(self):
        with pytest.raises(ValueError):
            LoopBound(e.var("n"), 0, is_lower=True)

    def test_equality(self):
        a = LoopBound(e.var("n"), 2, True)
        b = LoopBound(e.var("n"), 2, True)
        assert a == b and hash(a) == hash(b)


class TestEqualityEliminationRegression:
    """Regression: equalities with |coeff| > 1 and negative sign used to
    land in the wrong Fourier-Motzkin combination list, flipping the
    projected bounds (found via strided access images)."""

    def test_negative_wide_coefficient_equality(self):
        # { (j, b) : b - 2j == 0, 0 <= j <= 1 } projected onto b -> [0, 2]
        s = BasicSet(
            ["j", "b"],
            [Constraint.eq(e.var("b") - e.var("j") * 2, 0),
             Constraint.ge("j", 0), Constraint.le("j", 1)],
        )
        p = s.drop_dim("j")
        assert p.constant_bounds("b") == (0, 2)
        assert not p.is_empty()

    def test_positive_wide_coefficient_equality(self):
        # { (j, b) : 2j - b == 0, 0 <= j <= 3 } -> b in [0, 6]
        s = BasicSet(
            ["j", "b"],
            [Constraint.eq(e.var("j") * 2 - e.var("b"), 0),
             Constraint.ge("j", 0), Constraint.le("j", 3)],
        )
        assert s.drop_dim("j").constant_bounds("b") == (0, 6)

    def test_projection_never_empties_nonempty_set(self):
        s = BasicSet(
            ["i", "j", "b"],
            [Constraint.eq(e.var("b") - e.var("i") * 3 + e.var("j") * 2, 0),
             Constraint.ge("i", 0), Constraint.le("i", 2),
             Constraint.ge("j", 0), Constraint.le("j", 2)],
        )
        projected = s.drop_dim("i").drop_dim("j")
        assert not projected.is_empty()
        # every realizable b stays inside the projection
        for p in s.points():
            assert projected.contains({"b": p["b"]})


class TestParallelPruning:
    """Scalar-multiple constraints are pruned, not just exact duplicates."""

    def test_scalar_multiples_collapse_on_construction(self):
        # 2i >= 2 and i >= 1 and 3i >= 3 normalize to the same
        # half-plane; only one survives.
        s = BasicSet(
            ("i",),
            [
                Constraint.ge(e({"i": 2}), 2),
                Constraint.ge(e({"i": 1}), 1),
                Constraint.ge(e({"i": 3}), 3),
            ],
        )
        assert len(s.constraints) == 1

    def test_parallel_inequalities_keep_tightest(self):
        # i >= 1 and i >= 5: the conjunction is i >= 5.
        s = BasicSet(
            ("i",), [Constraint.ge(e({"i": 1}), 1), Constraint.ge(e({"i": 1}), 5)]
        )
        assert len(s.constraints) == 1
        assert not s.contains({"i": 4})
        assert s.contains({"i": 5})

    def test_negated_equalities_collapse(self):
        s = BasicSet(
            ("i", "j"),
            [Constraint.eq(e({"i": 1, "j": -1})), Constraint.eq(e({"i": -1, "j": 1}))],
        )
        assert len(s.constraints) == 1

    def test_intersect_project_chain_stays_bounded(self):
        # Repeated intersect + project_onto used to accumulate parallel
        # constraints without bound (every Fourier-Motzkin step combines
        # them pairwise, squaring the system).  Each iteration lifts the
        # set with an auxiliary dim t and projects it back out, so the
        # elimination really runs; the constraint count must stay flat
        # and the set's meaning must not change.
        s = BasicSet.box({"i": (0, 63), "j": (0, 63), "k": (0, 63)})
        sizes = []
        for step in range(12):
            lifted = BasicSet(
                ("i", "j", "k", "t"),
                list(s.constraints)
                + [
                    Constraint.ge(e({"t": 1}), -step),
                    Constraint.ge(e({"t": -1, "i": 1, "j": 1}), 5 - 64),
                    Constraint.ge(e({"t": 1, "k": -1}), -64),
                ],
            )
            s = lifted.project_onto(("i", "j", "k"))
            sizes.append(len(s.constraints))
        assert max(sizes) <= 16, sizes
        assert sizes[-1] == sizes[3], sizes  # converged, not growing
        assert s.count_points() > 0
