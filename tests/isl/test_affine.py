"""Unit tests for affine expressions."""

import pytest

from repro.isl.affine import AffineExpr, sum_exprs


class TestConstruction:
    def test_var(self):
        i = AffineExpr.var("i")
        assert i.coeff("i") == 1
        assert i.constant == 0

    def test_const(self):
        c = AffineExpr.const(7)
        assert c.is_constant()
        assert c.constant == 7

    def test_zero_coeffs_dropped(self):
        e = AffineExpr({"i": 0, "j": 2})
        assert e.dims() == ("j",)

    def test_coerce_int(self):
        assert AffineExpr.coerce(5) == AffineExpr.const(5)

    def test_coerce_str(self):
        assert AffineExpr.coerce("k") == AffineExpr.var("k")

    def test_coerce_passthrough(self):
        e = AffineExpr.var("i")
        assert AffineExpr.coerce(e) is e

    def test_coerce_rejects_float(self):
        with pytest.raises(TypeError):
            AffineExpr.coerce(1.5)

    def test_non_int_coeff_rejected(self):
        with pytest.raises(TypeError):
            AffineExpr({"i": 1.5})

    def test_non_int_const_rejected(self):
        with pytest.raises(TypeError):
            AffineExpr({}, 0.5)


class TestArithmetic:
    def test_add(self):
        e = AffineExpr.var("i") + AffineExpr.var("j") + 3
        assert e.coeff("i") == 1
        assert e.coeff("j") == 1
        assert e.constant == 3

    def test_add_cancels(self):
        e = AffineExpr.var("i") - AffineExpr.var("i")
        assert e.is_zero()

    def test_radd(self):
        e = 2 + AffineExpr.var("i")
        assert e.constant == 2

    def test_sub(self):
        e = AffineExpr.var("i") - 4
        assert e.constant == -4

    def test_rsub(self):
        e = 10 - AffineExpr.var("i")
        assert e.coeff("i") == -1
        assert e.constant == 10

    def test_neg(self):
        e = -(AffineExpr.var("i") * 2 + 3)
        assert e.coeff("i") == -2
        assert e.constant == -3

    def test_mul(self):
        e = (AffineExpr.var("i") + 1) * 3
        assert e.coeff("i") == 3
        assert e.constant == 3

    def test_rmul(self):
        e = 4 * AffineExpr.var("i")
        assert e.coeff("i") == 4

    def test_exact_floordiv(self):
        e = (AffineExpr.var("i") * 4 + 8) // 4
        assert e.coeff("i") == 1
        assert e.constant == 2

    def test_inexact_floordiv_raises(self):
        with pytest.raises(ValueError):
            (AffineExpr.var("i") * 3) // 2

    def test_floordiv_zero_raises(self):
        with pytest.raises(ValueError):
            AffineExpr.var("i") // 0


class TestSubstitution:
    def test_substitute_dim_with_expr(self):
        # i -> 4*i0 + i1
        e = AffineExpr.var("i") * 2 + 1
        s = e.substitute({"i": AffineExpr.var("i0") * 4 + AffineExpr.var("i1")})
        assert s.coeff("i0") == 8
        assert s.coeff("i1") == 2
        assert s.constant == 1

    def test_substitute_keeps_unbound(self):
        e = AffineExpr.var("i") + AffineExpr.var("j")
        s = e.substitute({"i": 5})
        assert s.coeff("j") == 1
        assert s.constant == 5

    def test_rename(self):
        e = AffineExpr.var("i") + AffineExpr.var("j") * 2
        r = e.rename({"i": "x"})
        assert r.coeff("x") == 1
        assert r.coeff("j") == 2

    def test_evaluate(self):
        e = AffineExpr.var("i") * 3 - AffineExpr.var("j") + 2
        assert e.evaluate({"i": 4, "j": 5}) == 9

    def test_evaluate_unbound_raises(self):
        with pytest.raises(KeyError):
            AffineExpr.var("i").evaluate({})


class TestQueries:
    def test_is_single_dim(self):
        assert AffineExpr.var("i").is_single_dim()
        assert not (AffineExpr.var("i") * 2).is_single_dim()
        assert not (AffineExpr.var("i") + 1).is_single_dim()
        assert not AffineExpr.const(0).is_single_dim()

    def test_single_dim_value(self):
        assert AffineExpr.var("q").single_dim() == "q"

    def test_single_dim_raises(self):
        with pytest.raises(ValueError):
            AffineExpr.const(3).single_dim()

    def test_content(self):
        e = AffineExpr({"i": 4, "j": 6}, 8)
        assert e.content() == 2

    def test_coeff_gcd_ignores_const(self):
        e = AffineExpr({"i": 4, "j": 6}, 3)
        assert e.coeff_gcd() == 2

    def test_dims_sorted(self):
        e = AffineExpr({"z": 1, "a": 1, "m": 1})
        assert e.dims() == ("a", "m", "z")


class TestEqualityHash:
    def test_equal_exprs_hash_equal(self):
        a = AffineExpr.var("i") + 2
        b = AffineExpr({"i": 1}, 2)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal(self):
        assert AffineExpr.var("i") != AffineExpr.var("j")

    def test_str_roundtrip_stable(self):
        e = AffineExpr({"i": -2, "j": 1}, -3)
        assert str(e) == "-2*i + j - 3"


def test_sum_exprs():
    total = sum_exprs(["i", "j", 5])
    assert total == AffineExpr({"i": 1, "j": 1}, 5)


def test_sum_exprs_empty():
    assert sum_exprs([]).is_zero()
