"""Unit tests for multi-affine maps and 2d+1 schedules."""

import pytest

from repro.isl.affine import AffineExpr
from repro.isl.maps import MultiAffineMap, ScheduleMap, lex_less

e = AffineExpr


class TestMultiAffineMap:
    def test_identity(self):
        m = MultiAffineMap.identity(["i", "j"])
        assert m.apply({"i": 2, "j": 5}) == (2, 5)

    def test_apply_affine(self):
        m = MultiAffineMap(["i", "j"], [e.var("i") + e.var("j"), e.var("j") * 2 - 1])
        assert m.apply({"i": 1, "j": 3}) == (4, 5)

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            MultiAffineMap(["i"], [e.var("j")])

    def test_substitute_for_split(self):
        # access A[i] under i -> 4*i0 + i1
        m = MultiAffineMap(["i"], [e.var("i")])
        s = m.substitute({"i": e.var("i0") * 4 + e.var("i1")}, ["i0", "i1"])
        assert s.apply({"i0": 2, "i1": 3}) == (11,)

    def test_rename_inputs(self):
        m = MultiAffineMap(["i"], [e.var("i") + 1])
        r = m.rename_inputs({"i": "x"})
        assert r.in_dims == ("x",)
        assert r.apply({"x": 0}) == (1,)

    def test_compose(self):
        inner = MultiAffineMap(["i"], [e.var("i") * 2, e.var("i") + 1])
        outer = MultiAffineMap(["a", "b"], [e.var("a") + e.var("b")])
        composed = outer.compose(inner)
        assert composed.apply({"i": 3}) == (10,)  # 6 + 4

    def test_compose_arity_mismatch(self):
        inner = MultiAffineMap(["i"], [e.var("i")])
        outer = MultiAffineMap(["a", "b"], [e.var("a")])
        with pytest.raises(ValueError):
            outer.compose(inner)

    def test_equality(self):
        a = MultiAffineMap(["i"], [e.var("i")])
        b = MultiAffineMap(["i"], [e.var("i")])
        assert a == b and hash(a) == hash(b)


class TestScheduleMap:
    def test_default_shape(self):
        s = ScheduleMap.default(["i", "j"])
        assert s.depth == 2
        assert s.static_dim(0) == 0
        assert s.dynamic_dim(0) == e.var("i")
        assert s.dynamic_dim(1) == e.var("j")

    def test_default_with_prefix(self):
        s = ScheduleMap.default(["i"], prefix=[3])
        assert s.static_dim(0) == 3

    def test_even_length_rejected(self):
        with pytest.raises(ValueError):
            ScheduleMap(["i"], [0, e.var("i")])

    def test_nonconstant_static_rejected(self):
        with pytest.raises(ValueError):
            ScheduleMap(["i"], [e.var("i"), e.var("i"), 0])

    def test_with_static_dim(self):
        s = ScheduleMap.default(["i"]).with_static_dim(1, 5)
        assert s.static_dim(1) == 5
        assert s.static_dim(0) == 0

    def test_with_dynamic_dims_interchange(self):
        s = ScheduleMap.default(["i", "j"])
        swapped = s.with_dynamic_dims([e.var("j"), e.var("i")])
        assert swapped.dynamic_dim(0) == e.var("j")
        assert swapped.dynamic_dim(1) == e.var("i")

    def test_substitute(self):
        s = ScheduleMap.default(["i"])
        t = s.substitute({"i": e.var("i0") * 2 + e.var("i1")}, ["i0", "i1"])
        assert t.dynamic_dim(0) == e.var("i0") * 2 + e.var("i1")

    def test_pad_to_depth(self):
        s = ScheduleMap.default(["i"]).with_static_dim(1, 7)
        padded = s.pad_to_depth(3)
        assert padded.depth == 3
        assert padded.dynamic_dim(1).is_zero()
        assert padded.dynamic_dim(2).is_zero()
        # The original final static keeps its boundary position so that
        # ordering against deeper fused siblings is preserved.
        assert padded.static_dim(1) == 7
        assert padded.entries[-1].constant == 0

    def test_pad_preserves_lex_order_against_deeper_sibling(self):
        shallow = ScheduleMap(["i"], [0, e.var("i"), 1]).pad_to_depth(2)
        deep = ScheduleMap(["i", "j"], [0, e.var("i"), 0, e.var("j"), 0])
        # shallow was sequenced *after* deep at the boundary; padding must
        # keep every shallow instance after every deep instance at equal i.
        s_vec = shallow.vector_at({"i": 3})
        d_vec = deep.vector_at({"i": 3, "j": 99})
        assert lex_less(d_vec, s_vec)

    def test_pad_shrink_rejected(self):
        with pytest.raises(ValueError):
            ScheduleMap.default(["i", "j"]).pad_to_depth(1)

    def test_vector_at(self):
        s = ScheduleMap.default(["i", "j"], prefix=[1])
        assert s.vector_at({"i": 2, "j": 3}) == (1, 2, 0, 3, 0)


class TestLexOrder:
    def test_lex_less_basic(self):
        assert lex_less((0, 1), (0, 2))
        assert not lex_less((0, 2), (0, 1))

    def test_lex_less_prefix(self):
        assert lex_less((0,), (0, 1))
        assert not lex_less((0, 1), (0,))

    def test_lex_equal_not_less(self):
        assert not lex_less((1, 2), (1, 2))

    def test_schedule_orders_after_primitive(self):
        # S2 after S1 at depth 0 => S1 static prefix 0, S2 static prefix 1.
        s1 = ScheduleMap.default(["i"], prefix=[0])
        s2 = ScheduleMap.default(["i"], prefix=[1])
        assert lex_less(s1.vector_at({"i": 9}), s2.vector_at({"i": 0}))
