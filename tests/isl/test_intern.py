"""Hash-consing contract for the affine IR atoms.

Identity is an optimization, never a semantic: within one context,
structurally equal atoms are one object; across contexts (or after a
table clear, or through pickle) equality falls back to structure.
"""

import pickle

import pytest

from repro.isl import intern as _intern
from repro.isl.affine import AffineExpr
from repro.isl.constraint import EQ, GE, Constraint


@pytest.fixture
def fresh_context():
    """Run the test under a private InternContext, then restore."""
    context = _intern.InternContext()
    previous = _intern.activate(context)
    yield context
    _intern.activate(previous)


class TestExprInterning:
    def test_equal_exprs_are_one_object(self, fresh_context):
        a = AffineExpr({"i": 2, "j": -1}, 3)
        b = AffineExpr({"j": -1, "i": 2}, 3)
        assert a is b

    def test_zero_coefficients_normalize_to_same_object(self, fresh_context):
        assert AffineExpr({"i": 1, "j": 0}, 0) is AffineExpr({"i": 1}, 0)

    def test_arithmetic_reinterns(self, fresh_context):
        i, j = AffineExpr.var("i"), AffineExpr.var("j")
        assert (i + j) is (j + i)
        assert (i - i) is AffineExpr.const(0)

    def test_distinct_values_distinct_objects(self, fresh_context):
        assert AffineExpr({"i": 1}, 0) is not AffineExpr({"i": 1}, 1)

    def test_items_slot_is_sorted(self, fresh_context):
        expr = AffineExpr({"j": 2, "i": 1}, 5)
        assert expr._items == (("i", 1), ("j", 2))


class TestConstraintInterning:
    def test_equal_constraints_are_one_object(self, fresh_context):
        a = Constraint(AffineExpr({"i": 1}, -1), GE)
        b = Constraint(AffineExpr({"i": 1}, -1), GE)
        assert a is b

    def test_kind_distinguishes(self, fresh_context):
        expr = AffineExpr({"i": 1}, -1)
        assert Constraint(expr, GE) is not Constraint(expr, EQ)

    def test_normalization_before_interning(self, fresh_context):
        # 2i >= 4 normalizes to i >= 2: same interned object.
        assert Constraint.ge(AffineExpr({"i": 2}), 4) is Constraint.ge(
            AffineExpr({"i": 1}), 2
        )


class TestContextIsolation:
    def test_separate_contexts_compare_structurally(self):
        first = _intern.InternContext()
        second = _intern.InternContext()
        previous = _intern.activate(first)
        try:
            a = AffineExpr({"i": 1}, 7)
            _intern.activate(second)
            b = AffineExpr({"i": 1}, 7)
        finally:
            _intern.activate(previous)
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_activate_returns_previous(self):
        context = _intern.InternContext()
        previous = _intern.activate(context)
        try:
            assert _intern.active() is context
        finally:
            assert _intern.activate(previous) is context

    def test_stats_track_table_sizes(self, fresh_context):
        base = _intern.stats()["exprs"]
        AffineExpr({"i": 1}, 41)
        AffineExpr({"i": 1}, 42)
        assert _intern.stats()["exprs"] == base + 2

    def test_cap_clears_wholesale_but_objects_stay_valid(self):
        context = _intern.InternContext(cap=4)
        previous = _intern.activate(context)
        try:
            survivors = [AffineExpr({"i": 1}, n) for n in range(10)]
            # The table cleared along the way; live objects still work.
            assert all(s.constant == n for n, s in enumerate(survivors))
            assert len(context.exprs) <= 4
        finally:
            _intern.activate(previous)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            _intern.InternContext(cap=0)


class TestPickleRoundTrip:
    def test_expr_reinterns_on_load(self, fresh_context):
        expr = AffineExpr({"i": 2, "j": -3}, 5)
        clone = pickle.loads(pickle.dumps(expr))
        assert clone is expr  # same context: loads re-interns to the atom

    def test_constraint_reinterns_on_load(self, fresh_context):
        constraint = Constraint.ge(AffineExpr({"i": 1, "j": 1}), 3)
        clone = pickle.loads(pickle.dumps(constraint))
        assert clone is constraint

    def test_load_into_other_context_is_structural(self, fresh_context):
        expr = AffineExpr({"i": 2}, 5)
        payload = pickle.dumps(expr)
        other = _intern.InternContext()
        previous = _intern.activate(other)
        try:
            clone = pickle.loads(payload)
        finally:
            _intern.activate(previous)
        assert clone is not expr
        assert clone == expr


class TestReferenceMode:
    def test_toggle_returns_previous(self):
        previous = _intern.set_reference_mode(True)
        try:
            assert _intern.reference_mode() is True
        finally:
            _intern.set_reference_mode(previous)
        assert _intern.reference_mode() is previous
