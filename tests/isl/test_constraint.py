"""Unit tests for affine constraints and their normalization."""

import pytest

from repro.isl.affine import AffineExpr
from repro.isl.constraint import EQ, GE, Constraint


class TestConstructors:
    def test_eq(self):
        c = Constraint.eq("i", 5)
        assert c.kind == EQ
        assert c.expr == AffineExpr.var("i") - 5

    def test_ge(self):
        c = Constraint.ge("i", 0)
        assert c.kind == GE
        assert c.satisfied_by({"i": 0})
        assert not c.satisfied_by({"i": -1})

    def test_le(self):
        c = Constraint.le("i", 3)
        assert c.satisfied_by({"i": 3})
        assert not c.satisfied_by({"i": 4})

    def test_lt_is_integer_strict(self):
        c = Constraint.lt("i", 3)
        assert c.satisfied_by({"i": 2})
        assert not c.satisfied_by({"i": 3})

    def test_gt_is_integer_strict(self):
        c = Constraint.gt("i", 3)
        assert c.satisfied_by({"i": 4})
        assert not c.satisfied_by({"i": 3})

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Constraint(AffineExpr.var("i"), "<")


class TestNormalization:
    def test_gcd_divided_out_equality(self):
        c = Constraint.eq(AffineExpr({"i": 4}), 8)
        assert c.expr == AffineExpr({"i": 1}, -2)

    def test_inequality_constant_tightened(self):
        # 2i - 3 >= 0 over the integers means i >= 2, i.e. i - 2 >= 0.
        c = Constraint(AffineExpr({"i": 2}, -3), GE)
        assert c.expr == AffineExpr({"i": 1}, -2)

    def test_tightening_preserves_integer_points(self):
        c = Constraint(AffineExpr({"i": 3}, -4), GE)  # 3i >= 4 -> i >= 2
        for i in range(-5, 6):
            assert c.satisfied_by({"i": i}) == (3 * i - 4 >= 0)

    def test_unit_coeff_unchanged(self):
        c = Constraint(AffineExpr({"i": 1}, -3), GE)
        assert c.expr == AffineExpr({"i": 1}, -3)


class TestClassification:
    def test_tautology_ge(self):
        assert Constraint.ge(5, 0).is_tautology()
        assert not Constraint.ge(-1, 0).is_tautology()

    def test_tautology_eq(self):
        assert Constraint.eq(0, 0).is_tautology()

    def test_contradiction_constant(self):
        assert Constraint.ge(-1, 0).is_contradiction()
        assert Constraint.eq(1, 0).is_contradiction()

    def test_contradiction_gcd_test(self):
        # 2i == 1 has no integer solution.
        c = Constraint(AffineExpr({"i": 2}, -1), EQ)
        assert c.is_contradiction()

    def test_feasible_equality_not_contradiction(self):
        c = Constraint(AffineExpr({"i": 2}, -4), EQ)
        assert not c.is_contradiction()

    def test_involves(self):
        c = Constraint.ge(AffineExpr.var("i") + AffineExpr.var("j"), 0)
        assert c.involves("i")
        assert not c.involves("k")


class TestTransforms:
    def test_substitute(self):
        c = Constraint.ge("i", 2)
        s = c.substitute({"i": AffineExpr.var("x") + AffineExpr.var("y")})
        assert s.satisfied_by({"x": 1, "y": 1})
        assert not s.satisfied_by({"x": 0, "y": 1})

    def test_rename(self):
        c = Constraint.le("i", 7)
        r = c.rename({"i": "z"})
        assert r.involves("z")
        assert not r.involves("i")

    def test_equality_and_hash(self):
        a = Constraint.ge(AffineExpr.var("i"), 3)
        b = Constraint.ge(AffineExpr.var("i") - 3, 0)
        assert a == b
        assert hash(a) == hash(b)

    def test_eq_vs_ge_differ(self):
        assert Constraint.eq("i", 0) != Constraint.ge("i", 0)
