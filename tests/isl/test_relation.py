"""Unit tests for basic maps (affine relations)."""

import pytest

from repro.isl.affine import AffineExpr
from repro.isl.constraint import Constraint
from repro.isl.maps import MultiAffineMap
from repro.isl.relation import BasicMap
from repro.isl.sets import BasicSet

e = AffineExpr


def access_map():
    """{ [i, j] -> [a, b] : a = i + 1, b = 2j }"""
    func = MultiAffineMap(["i", "j"], [e.var("i") + 1, e.var("j") * 2])
    return BasicMap.from_multi_affine(func, ["a", "b"])


class TestConstruction:
    def test_from_multi_affine(self):
        m = access_map()
        assert m.contains({"i": 0, "j": 3}, {"a": 1, "b": 6})
        assert not m.contains({"i": 0, "j": 3}, {"a": 1, "b": 5})

    def test_identity(self):
        m = BasicMap.identity(["i"], ["o"])
        assert m.contains({"i": 5}, {"o": 5})
        assert not m.contains({"i": 5}, {"o": 6})

    def test_overlapping_spaces_rejected(self):
        with pytest.raises(ValueError):
            BasicMap(["i"], ["i"])

    def test_arity_checked(self):
        func = MultiAffineMap(["i"], [e.var("i")])
        with pytest.raises(ValueError):
            BasicMap.from_multi_affine(func, ["a", "b"])


class TestImages:
    def test_image_of_box(self):
        m = access_map()
        dom = BasicSet.box({"i": (0, 3), "j": (0, 3)}, order=["i", "j"])
        img = m.image(dom)
        assert img.constant_bounds("a") == (1, 4)
        assert img.constant_bounds("b") == (0, 6)
        # the projected image is the rational shadow: bounds are exact,
        # the stride-2 structure of b is not representable without divs
        assert img.contains({"a": 1, "b": 4})

    def test_preimage(self):
        m = access_map()
        target = BasicSet.box({"a": (2, 2), "b": (0, 2)}, order=["a", "b"])
        pre = m.preimage(target)
        assert pre.contains({"i": 1, "j": 0})
        assert pre.contains({"i": 1, "j": 1})
        assert not pre.contains({"i": 0, "j": 0})

    def test_domain_and_range(self):
        m = access_map().intersect_domain(
            BasicSet.box({"i": (0, 1), "j": (0, 1)}, order=["i", "j"])
        )
        assert m.domain().count_points() == 4
        # the range shadow is a 2x3 box (stride of b smoothed over)
        assert m.range().count_points() == 6


class TestAlgebra:
    def test_reverse(self):
        m = access_map().reverse()
        assert m.contains({"a": 1, "b": 6}, {"i": 0, "j": 3})

    def test_compose(self):
        # inner: { [i] -> [m] : m = 2i }, outer: { [m] -> [o] : o = m + 1 }
        inner = BasicMap.from_multi_affine(
            MultiAffineMap(["i"], [e.var("i") * 2]), ["m"]
        )
        outer = BasicMap.from_multi_affine(
            MultiAffineMap(["m"], [e.var("m") + 1]), ["o"]
        )
        composed = outer.compose(inner)
        assert composed.contains({"i": 3}, {"o": 7})
        assert not composed.contains({"i": 3}, {"o": 6})

    def test_compose_arity_mismatch(self):
        inner = BasicMap.identity(["i"], ["m"])
        outer = BasicMap.identity(["x"], ["o"])
        with pytest.raises(ValueError):
            outer.compose(inner)

    def test_empty_relation(self):
        m = BasicMap(["i"], ["o"], [Constraint.ge("i", 1), Constraint.le("i", 0)])
        assert m.is_empty()

    def test_intersect_range(self):
        m = access_map().intersect_range(
            BasicSet.box({"a": (0, 2), "b": (0, 2)}, order=["a", "b"])
        )
        assert m.contains({"i": 1, "j": 1}, {"a": 2, "b": 2})
        assert not m.contains({"i": 3, "j": 0}, {"a": 4, "b": 0})


class TestFootprint:
    def test_stencil_footprint(self):
        from repro.dsl import Function, compute, placeholder, var
        from repro.depgraph.footprint import access_footprint, compute_footprints

        with Function("st") as f:
            i = var("i", 1, 9)
            A = placeholder("A", (10,))
            s = compute("s", [i], (A(i - 1) + A(i + 1)) * 0.5, A(i))
        footprints = compute_footprints(s)
        # loads reach [0, 9]; the store covers [1, 8]; union box = [0, 9]
        assert footprints["A"].box == ((0, 9),)
        assert footprints["A"].box_elements == 10

    def test_tile_footprint_much_smaller_than_array(self):
        from repro.dsl import Function, compute, placeholder, var
        from repro.depgraph.footprint import compute_footprints

        with Function("tile") as f:
            i = var("i", 0, 8)
            j = var("j", 0, 8)
            A = placeholder("A", (1024, 1024))
            s = compute("s", [i, j], A(i + 100, j + 200) * 2.0, A(i + 100, j + 200))
        fp = compute_footprints(s)["A"]
        # i, j range over [0, 8) -> offsets reach 107/207 inclusive
        assert fp.box == ((100, 107), (200, 207))
        assert fp.box_elements == 64
        assert fp.exact_elements() == 64

    def test_strided_footprint_exact_vs_box(self):
        from repro.dsl import Function, compute, placeholder, var
        from repro.depgraph.footprint import access_footprint

        with Function("stride") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (32,))
            B = placeholder("B", (8,))
            s = compute("s", [i], A(i * 4) + 1.0, B(i))
        fp = access_footprint(s, s.loads()[0])
        assert fp.box == ((0, 28),)  # i in [0, 8) -> 4i in [0, 28]
        assert fp.exact_elements() == 8  # stride-4: only 8 touched

    def test_buffer_bits(self):
        from repro.dsl import Function, compute, placeholder, var
        from repro.dsl.dtypes import float64
        from repro.depgraph.footprint import buffer_bits

        with Function("bb") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (100,), float64)
            s = compute("s", [i], A(i) * 2.0, A(i))
        assert buffer_bits(s)["A"] == 4 * 64  # i in [0, 4)
