"""Property-based tests (hypothesis) for the integer set library."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.affine import AffineExpr
from repro.isl.astbuild import AstBuilder
from repro.isl.constraint import GE, Constraint
from repro.isl.maps import ScheduleMap
from repro.isl.sets import BasicSet

from tests.isl.test_astbuild import execute

e = AffineExpr

DIMS = ("i", "j")

small_int = st.integers(min_value=-8, max_value=8)
coeff = st.integers(min_value=-3, max_value=3)


@st.composite
def affine_exprs(draw, dims=DIMS):
    coeffs = {d: draw(coeff) for d in dims}
    return AffineExpr(coeffs, draw(small_int))


@st.composite
def random_sets(draw, dims=DIMS):
    """Bounded random sets: a box intersected with random half-planes."""
    bounds = {}
    for d in dims:
        lo = draw(st.integers(min_value=-4, max_value=2))
        hi = lo + draw(st.integers(min_value=0, max_value=6))
        bounds[d] = (lo, hi)
    base = BasicSet.box(bounds, order=dims)
    n_extra = draw(st.integers(min_value=0, max_value=2))
    extra = [Constraint(draw(affine_exprs(dims)), GE) for _ in range(n_extra)]
    return base.with_constraints(extra)


@st.composite
def points(draw, dims=DIMS):
    return {d: draw(small_int) for d in dims}


class TestAffineAlgebra:
    @given(affine_exprs(), affine_exprs(), points())
    def test_add_is_pointwise(self, a, b, p):
        assert (a + b).evaluate(p) == a.evaluate(p) + b.evaluate(p)

    @given(affine_exprs(), small_int, points())
    def test_scale_is_pointwise(self, a, k, p):
        assert (a * k).evaluate(p) == k * a.evaluate(p)

    @given(affine_exprs(), points())
    def test_neg_involution(self, a, p):
        assert (-(-a)) == a
        assert (-a).evaluate(p) == -a.evaluate(p)

    @given(affine_exprs(), affine_exprs(), affine_exprs())
    def test_add_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affine_exprs(), points())
    def test_substitution_identity(self, a, p):
        bound = a.substitute({d: AffineExpr.var(d) for d in DIMS})
        assert bound == a


class TestSetSemantics:
    @given(random_sets(), random_sets(), points())
    def test_intersection_is_conjunction(self, a, b, p):
        assert a.intersect(b).contains(p) == (a.contains(p) and b.contains(p))

    @given(random_sets())
    @settings(max_examples=50)
    def test_emptiness_agrees_with_enumeration(self, s):
        empty = s.is_empty()
        has_point = any(True for _ in s.points(limit=10000))
        assert empty == (not has_point)

    @given(random_sets())
    @settings(max_examples=50)
    def test_projection_is_shadow(self, s):
        projected = s.drop_dim("j")
        shadow = {p["i"] for p in s.points(limit=10000)}
        for i in range(-6, 12):
            if projected.contains({"i": i}):
                # FM with integer tightening may keep rational-only points,
                # but never drops a real shadow point.
                pass
            else:
                assert i not in shadow

    @given(random_sets())
    @settings(max_examples=50)
    def test_sample_member_when_nonempty(self, s):
        point = s.sample()
        if point is not None:
            assert s.contains(point)
        else:
            assert not list(s.points(limit=10000))

    @given(random_sets())
    @settings(max_examples=30)
    def test_rename_preserves_cardinality(self, s):
        renamed = s.rename_dims({"i": "x", "j": "y"})
        assert renamed.count_points(limit=10000) == s.count_points(limit=10000)


class TestSplitPreservesPoints:
    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=2, max_value=5),
    )
    def test_split_cardinality(self, extent, factor):
        dom = BasicSet.box({"i": (0, extent)})
        split = dom.substitute_dim(
            "i", e.var("i0") * factor + e.var("i1"), ["i0", "i1"],
            extra=[Constraint.ge("i1", 0), Constraint.le("i1", factor - 1)],
        )
        assert split.count_points() == extent + 1

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=-3, max_value=3),
    )
    def test_skew_is_bijective(self, extent, factor):
        dom = BasicSet.box({"i": (0, extent), "j": (0, extent)})
        skewed = dom.substitute_dim(
            "j", e.var("jp") - e.var("i") * factor, ["i", "jp"]
        )
        assert skewed.count_points() == (extent + 1) ** 2


class TestAstExecution:
    @given(random_sets())
    @settings(max_examples=40)
    def test_ast_visits_exactly_the_domain(self, s):
        if s.is_empty():
            return
        ast = AstBuilder().build([("S", s, ScheduleMap.default(list(s.dims)), None)])
        visited = {tuple(sorted(v.items())) for _, v in execute(ast)}
        expected = {tuple(sorted(p.items())) for p in s.points(limit=10000)}
        assert visited == expected

    @given(random_sets(), random_sets())
    @settings(max_examples=25)
    def test_two_statement_order_is_lexicographic(self, d1, d2):
        s1 = ScheduleMap.default(list(d1.dims), prefix=[0])
        s2 = ScheduleMap.default(list(d2.dims), prefix=[1])
        d2 = d2.rename_dims({"i": "k", "j": "l"})
        s2 = s2.rename_inputs({"i": "k", "j": "l"})
        ast = AstBuilder().build([("A", d1, s1, None), ("B", d2, s2, None)])
        trace = [t[0] for t in execute(ast)]
        if "A" in trace and "B" in trace:
            assert trace.index("B") > len([t for t in trace if t == "A"]) - 1
            first_b = trace.index("B")
            assert all(t == "B" for t in trace[first_b:])
