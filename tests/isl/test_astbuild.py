"""Unit tests for the CLooG-style polyhedral AST builder."""

import pytest

from repro.isl.affine import AffineExpr
from repro.isl.astbuild import AstBuilder, BlockNode, ForNode, IfNode, UserNode
from repro.isl.constraint import Constraint
from repro.isl.maps import ScheduleMap
from repro.isl.sets import BasicSet

e = AffineExpr


def build(*stmts):
    return AstBuilder().build(list(stmts))


def collect_loops(node):
    return [n for n in node.walk() if isinstance(n, ForNode)]


def collect_users(node):
    return [n for n in node.walk() if isinstance(n, UserNode)]


def execute(node, env=None, trace=None):
    """Interpret the AST, recording (stmt, binding values) tuples in order."""
    env = dict(env or {})
    trace = trace if trace is not None else []
    if isinstance(node, ForNode):
        lo = max(b.evaluate(env) for b in node.lowers)
        hi = min(b.evaluate(env) for b in node.uppers)
        for value in range(lo, hi + 1):
            env[node.iterator] = value
            execute(node.body, env, trace)
        env.pop(node.iterator, None)
    elif isinstance(node, IfNode):
        if all(c.satisfied_by(env) for c in node.conditions):
            execute(node.body, env, trace)
    elif isinstance(node, BlockNode):
        for child in node.stmts:
            execute(child, env, trace)
    elif isinstance(node, UserNode):
        values = {d: expr.evaluate(env) for d, expr in node.binding.items()}
        trace.append((node.name, values))
    return trace


class TestSingleStatement:
    def test_rectangular_nest(self):
        dom = BasicSet.box({"i": (0, 3), "j": (0, 2)})
        ast = build(("S", dom, ScheduleMap.default(["i", "j"]), None))
        loops = collect_loops(ast)
        assert [l.iterator for l in loops] == ["i", "j"]
        assert loops[0].constant_trip_count() == 4
        assert loops[1].constant_trip_count() == 3

    def test_execution_covers_domain(self):
        dom = BasicSet.box({"i": (0, 3), "j": (0, 2)})
        ast = build(("S", dom, ScheduleMap.default(["i", "j"]), None))
        trace = execute(ast)
        assert len(trace) == 12
        assert trace[0] == ("S", {"i": 0, "j": 0})
        assert trace[-1] == ("S", {"i": 3, "j": 2})

    def test_interchanged_schedule(self):
        dom = BasicSet.box({"i": (0, 1), "j": (0, 2)})
        sched = ScheduleMap(["i", "j"], [0, e.var("j"), 0, e.var("i"), 0])
        ast = build(("S", dom, sched, None))
        loops = collect_loops(ast)
        assert [l.iterator for l in loops] == ["j", "i"]
        trace = execute(ast)
        # j varies slowest after interchange
        assert trace[0][1] == {"i": 0, "j": 0}
        assert trace[1][1] == {"i": 1, "j": 0}

    def test_tiled_domain_bounds_pruned(self):
        dom = BasicSet.box({"i": (0, 31)}).substitute_dim(
            "i", e.var("i0") * 4 + e.var("i1"), ["i0", "i1"],
            extra=[Constraint.ge("i1", 0), Constraint.le("i1", 3)],
        )
        ast = build(("S", dom, ScheduleMap.default(["i0", "i1"]), None))
        loops = collect_loops(ast)
        assert loops[0].constant_trip_count() == 8
        assert loops[1].constant_trip_count() == 4
        assert len(execute(ast)) == 32

    def test_skewed_triangular_bounds(self):
        dom = BasicSet.box({"i": (0, 3), "j": (0, 3)}).substitute_dim(
            "j", e.var("jp") - e.var("i"), ["i", "jp"]
        )
        sched = ScheduleMap(["i", "jp"], [0, e.var("jp"), 0, e.var("i"), 0])
        ast = build(("S", dom, sched, None))
        trace = execute(ast)
        assert len(trace) == 16
        # every recorded point satisfies the original box via j = jp - i
        for _, values in trace:
            j = values["jp"] - values["i"]
            assert 0 <= values["i"] <= 3 and 0 <= j <= 3

    def test_unscheduled_dim_rejected(self):
        dom = BasicSet.box({"i": (0, 3), "j": (0, 3)})
        sched = ScheduleMap(["i", "j"], [0, e.var("i"), 0])
        with pytest.raises(ValueError):
            build(("S", dom, sched, None))

    def test_unbounded_loop_rejected(self):
        dom = BasicSet(["i"], [Constraint.ge("i", 0)])
        with pytest.raises(ValueError):
            build(("S", dom, ScheduleMap.default(["i"]), None))


class TestMultiStatement:
    def test_sequenced_by_leading_static_dim(self):
        d1 = BasicSet.box({"i": (0, 2)})
        d2 = BasicSet.box({"k": (0, 1)})
        s1 = ScheduleMap.default(["i"], prefix=[0])
        s2 = ScheduleMap.default(["k"], prefix=[1])
        ast = build(("A", d1, s1, None), ("B", d2, s2, None))
        trace = execute(ast)
        assert [t[0] for t in trace] == ["A", "A", "A", "B", "B"]

    def test_fused_same_bounds(self):
        d = BasicSet.box({"i": (0, 3)})
        s1 = ScheduleMap(["i"], [0, e.var("i"), 0])
        s2 = ScheduleMap(["i"], [0, e.var("i"), 1])
        ast = build(("A", d, s1, None), ("B", d, s2, None))
        assert len(collect_loops(ast)) == 1
        trace = execute(ast)
        assert [t[0] for t in trace][:4] == ["A", "B", "A", "B"]

    def test_fused_final_static_dim_orders_body(self):
        d = BasicSet.box({"i": (0, 1)})
        s1 = ScheduleMap(["i"], [0, e.var("i"), 1])
        s2 = ScheduleMap(["i"], [0, e.var("i"), 0])
        ast = build(("A", d, s1, None), ("B", d, s2, None))
        trace = execute(ast)
        assert [t[0] for t in trace] == ["B", "A", "B", "A"]

    def test_fused_different_bounds_guarded(self):
        d1 = BasicSet.box({"i": (0, 7)})
        d2 = BasicSet.box({"i": (0, 3)})
        s1 = ScheduleMap(["i"], [0, e.var("i"), 0])
        s2 = ScheduleMap(["i"], [0, e.var("i"), 1])
        ast = build(("A", d1, s1, None), ("B", d2, s2, None))
        assert len(collect_loops(ast)) == 1
        trace = execute(ast)
        a_count = sum(1 for t in trace if t[0] == "A")
        b_count = sum(1 for t in trace if t[0] == "B")
        assert (a_count, b_count) == (8, 4)
        guards = [n for n in ast.walk() if isinstance(n, IfNode)]
        assert guards, "tighter statement must be guarded"

    def test_different_depths_padded(self):
        d1 = BasicSet.box({"i": (0, 1), "j": (0, 1)})
        d2 = BasicSet.box({"k": (0, 1)})
        s1 = ScheduleMap.default(["i", "j"], prefix=[0])
        s2 = ScheduleMap.default(["k"], prefix=[1])
        ast = build(("A", d1, s1, None), ("B", d2, s2, None))
        trace = execute(ast)
        assert len(trace) == 6

    def test_payload_reaches_user_node(self):
        d = BasicSet.box({"i": (0, 0)})
        payload = {"body": "A[i] = 0"}
        ast = build(("S", d, ScheduleMap.default(["i"]), payload))
        users = collect_users(ast)
        assert users[0].payload is payload

    def test_empty_build(self):
        ast = AstBuilder().build([])
        assert isinstance(ast, BlockNode)
        assert not ast.stmts


class TestLexicographicCorrectness:
    def test_trace_order_matches_schedule_vectors(self):
        """The AST executes instances in lexicographic schedule order."""
        d1 = BasicSet.box({"i": (0, 2), "j": (0, 1)})
        s1 = ScheduleMap(["i", "j"], [0, e.var("j"), 0, e.var("i"), 0])
        d2 = BasicSet.box({"k": (0, 2)})
        s2 = ScheduleMap.default(["k"], prefix=[1])
        ast = build(("A", d1, s1, None), ("B", d2, s2, None))
        trace = execute(ast)

        def timestamp(entry):
            name, values = entry
            sched = s1 if name == "A" else s2.pad_to_depth(2)
            return sched.vector_at(values)

        stamps = [timestamp(t) for t in trace]
        assert stamps == sorted(stamps)
