"""The global isl memo tables: correctness, counters, determinism."""

import pytest

from repro.isl import memo
from repro.isl.affine import AffineExpr
from repro.isl.constraint import Constraint
from repro.isl.relation import BasicMap
from repro.isl.sets import BasicSet


@pytest.fixture(autouse=True)
def fresh_tables():
    """Each test sees empty, enabled tables; global state is restored."""
    previous = memo.set_enabled(True)
    memo.clear_all()
    for table in memo.ALL_TABLES:
        table.reset_counters()
    yield
    memo.clear_all()
    memo.set_enabled(previous)


def _triangle(n=8):
    # { [i, j] : 0 <= i <= n-1 and 0 <= j <= i }
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    return BasicSet(
        ("i", "j"),
        [
            Constraint.ge(i, 0),
            Constraint.le(i, n - 1),
            Constraint.ge(j, 0),
            Constraint.le(j, i),
        ],
    )


class TestMemoTable:
    def test_counters_and_values(self):
        table = memo.MemoTable("t")
        assert table.get("k") is None
        assert (table.hits, table.misses) == (0, 1)
        table.put("k", 42)
        assert table.get("k") == 42
        assert (table.hits, table.misses) == (1, 1)

    def test_false_values_are_hits(self):
        table = memo.MemoTable("t")
        table.put("k", False)
        assert table.get("k") is False
        assert table.hits == 1

    def test_cap_clears_wholesale(self):
        table = memo.MemoTable("t", cap=2)
        table.put(1, "a")
        table.put(2, "b")
        table.put(3, "c")  # exceeds cap: table cleared first
        assert table.get(1) is None
        assert table.get(3) == "c"

    def test_set_enabled_returns_previous(self):
        assert memo.set_enabled(False) is True
        assert memo.set_enabled(True) is False
        assert memo.enabled()

    def test_stats_snapshot_keys(self):
        snapshot = memo.stats_snapshot()
        assert set(snapshot) == {t.name for t in memo.ALL_TABLES}
        assert all(v == (0, 0) for v in snapshot.values())


class TestProjectionMemo:
    def test_drop_dim_hit_is_identical(self):
        bset = _triangle()
        first = bset.drop_dim("j")
        second = bset.drop_dim("j")
        assert second is first  # memo returns the cached object
        assert memo.PROJECTION.hits >= 1

    def test_memoized_matches_uncached_exactly(self):
        bset = _triangle()
        cached = bset.drop_dim("j")
        memo.set_enabled(False)
        fresh = _triangle().drop_dim("j")
        # Bit-identical: same constraint tuple in the same order.
        assert cached.dims == fresh.dims
        assert cached.constraints == fresh.constraints

    def test_disabled_tables_stay_cold(self):
        memo.set_enabled(False)
        _triangle().drop_dim("j")
        assert memo.PROJECTION.hits == 0
        assert memo.PROJECTION.misses == 0


class TestEmptinessMemo:
    def test_emptiness_memoized(self):
        bset = _triangle()
        assert bset.is_empty() is False
        assert bset.is_empty() is False
        assert memo.EMPTINESS.hits >= 1

    def test_empty_set_memoized(self):
        i = AffineExpr.var("i")
        empty = BasicSet(("i",), [Constraint.ge(i, 1), Constraint.le(i, 0)])
        assert empty.is_empty() is True
        assert BasicSet(("i",), [Constraint.ge(i, 1), Constraint.le(i, 0)]).is_empty() is True
        assert memo.EMPTINESS.hits >= 1


class TestBoundsMemo:
    def test_dim_bounds_returns_fresh_lists(self):
        bset = _triangle()
        lowers, uppers = bset.dim_bounds("j", context=("i",))
        lowers.append("sentinel")
        lowers2, _ = bset.dim_bounds("j", context=("i",))
        assert "sentinel" not in lowers2

    def test_dim_bounds_hit_matches_uncached(self):
        bset = _triangle()
        bset.dim_bounds("j", context=("i",))
        cached = bset.dim_bounds("j", context=("i",))
        memo.set_enabled(False)
        fresh = _triangle().dim_bounds("j", context=("i",))
        assert cached == fresh


class TestBasicMapHash:
    def test_equal_maps_hash_equal(self):
        a = BasicMap.identity(("i",), ("o",))
        b = BasicMap.identity(("i",), ("o",))
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_key(self):
        a = BasicMap.identity(("i",), ("o",))
        table = {a: "v"}
        assert table[BasicMap.identity(("i",), ("o",))] == "v"

    def test_different_maps_unequal(self):
        a = BasicMap.identity(("i",), ("o",))
        b = BasicMap.identity(("j",), ("o",))
        assert a != b


class TestInternedKeys:
    """Eviction and hit/miss accounting with hash-consed atom keys.

    Memo keys are tuples of interned AffineExpr/Constraint atoms; the
    tables must behave identically whether a key's atoms are the
    canonical interned objects or structurally equal strays (from a
    cleared intern table or another context).
    """

    def test_interned_and_stray_keys_collide(self):
        from repro.isl import intern as _intern

        table = memo.MemoTable("t")
        canonical = Constraint.ge(AffineExpr({"i": 1}), 2)
        table.put(("k", canonical), "v")
        stray_context = _intern.InternContext()
        previous = _intern.activate(stray_context)
        try:
            stray = Constraint.ge(AffineExpr({"i": 1}), 2)
        finally:
            _intern.activate(previous)
        assert stray is not canonical
        assert table.get(("k", stray)) == "v"
        assert (table.hits, table.misses) == (1, 0)

    def test_eviction_under_interned_keys(self):
        table = memo.MemoTable("t", cap=3)
        keys = [(AffineExpr({"i": 1}, n),) for n in range(4)]
        for n, key in enumerate(keys):
            table.put(key, n)
        # Cap-3 table cleared wholesale before the 4th insert.
        assert table.get(keys[0]) is None
        assert table.get(keys[3]) == 3
        assert (table.hits, table.misses) == (1, 1)

    def test_projection_key_survives_intern_table_clear(self):
        from repro.isl import intern as _intern

        bset = _triangle()
        first = bset.drop_dim("j")
        _intern.active().clear()  # live atoms stay valid, table forgets
        second = _triangle().drop_dim("j")
        assert second.dims == first.dims
        assert second.constraints == first.constraints


class TestMemoOnOffIdentity:
    """Property: memo on/off is bit-identical across all workloads."""

    WORKLOADS = ("gemm", "bicg", "mm2", "mm3", "gesummv")

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_workload_bit_identity(self, name):
        from repro.dse import auto_dse
        from repro.dse.options import DseOptions
        from repro.workloads import polybench

        factory = getattr(polybench, name)
        memo.clear_all()
        cached = auto_dse(factory(16), options=DseOptions(cache=True))
        memo.clear_all()
        uncached = auto_dse(factory(16), options=DseOptions(cache=False))
        assert cached.report == uncached.report
        assert cached.tile_vectors() == uncached.tile_vectors()
        assert cached.evaluations == uncached.evaluations
        assert [d.fingerprint() for d in cached.schedule] == [
            d.fingerprint() for d in uncached.schedule
        ]
