"""The vectorized isl kernels are bit-identical to the reference path.

:mod:`repro.isl.matrix` promises *bit identity* -- same constraints,
same order -- with the pure-Python implementations in
:mod:`repro.isl.sets`, which is what lets ``_eliminate`` dispatch by
system size and makes ``REPRO_ISL_REFERENCE=1`` a differential oracle.
This suite pins that contract with deterministic cases, randomized
sweeps, and a hypothesis property test, plus the int64-overflow
fallbacks that keep exact big-integer arithmetic reachable.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl import matrix as _matrix
from repro.isl import sets as _sets
from repro.isl.affine import AffineExpr
from repro.isl.constraint import EQ, GE, Constraint

DIMS = ("i", "j", "k", "l")


def _random_system(rng, n, eq_frac=0.2, span=40):
    cons = []
    for _ in range(n):
        picked = rng.sample(DIMS, rng.randint(1, len(DIMS)))
        coeffs = {d: rng.randint(-6, 6) for d in picked}
        expr = AffineExpr(coeffs, rng.randint(-span, span))
        cons.append(Constraint(expr, EQ if rng.random() < eq_frac else GE))
    return cons


def _structured_system(tiles, extent=64):
    cons = []
    for d in ("i", "j", "k"):
        cons.append(Constraint.ge(AffineExpr({d: 1})))
        cons.append(Constraint.ge(AffineExpr({d: -1}, extent - 1)))
    for t in range(tiles):
        cons.append(Constraint.ge(AffineExpr({"k": 1, "i": -1}, 8 * t)))
        cons.append(Constraint.ge(AffineExpr({"k": -1, "j": 1}, 8 * t + 7)))
        cons.append(Constraint.ge(AffineExpr({"k": 2, "i": 1, "j": -1}, 3 * t + 1)))
    return cons


class TestPackSystem:
    def test_round_trip_layout(self):
        cons = [
            Constraint.ge(AffineExpr({"i": 2, "k": -3}, 5)),
            Constraint.eq(AffineExpr({"j": 1}, -4)),
        ]
        names, matrix, is_eq = _matrix.pack_system(cons)
        assert names == ["i", "j", "k"]
        assert matrix.tolist() == [[2, 0, -3, 5], [0, 1, 0, -4]]
        assert is_eq.tolist() == [False, True]

    def test_explicit_column_order(self):
        cons = [Constraint.ge(AffineExpr({"i": 1, "j": 2}, 3))]
        names, matrix, _ = _matrix.pack_system(cons, dims=("j", "i"))
        assert names == ["j", "i"]
        assert matrix.tolist() == [[2, 1, 3]]

    def test_coefficient_overflow_returns_none(self):
        # j's unit coefficient keeps the gcd at 1 so normalization
        # cannot shrink the oversized coefficient away.
        big = _matrix.COEFF_LIMIT + 1
        cons = [Constraint.ge(AffineExpr({"i": big, "j": 1}, 0))]
        assert _matrix.pack_system(cons) is None

    def test_constant_overflow_returns_none(self):
        cons = [Constraint.ge(AffineExpr({"i": 1}, -(_matrix.COEFF_LIMIT + 1)))]
        assert _matrix.pack_system(cons) is None

    def test_unknown_dim_returns_none(self):
        cons = [Constraint.ge(AffineExpr({"i": 1}, 0))]
        assert _matrix.pack_system(cons, dims=("j",)) is None


class TestEliminateIdentity:
    def test_structured_tiled_system(self):
        cons = _structured_system(tiles=12)
        assert len(cons) >= _sets.VECTORIZE_MIN_CONSTRAINTS
        assert _matrix.eliminate(cons, "k") == _sets._eliminate_reference(cons, "k")

    def test_substitution_pivot_path(self):
        cons = [
            Constraint.eq(AffineExpr({"k": 1, "i": -2}, 1)),
            Constraint.ge(AffineExpr({"k": 3, "j": 1}, 7)),
            Constraint.ge(AffineExpr({"i": 1}, 0)),
        ]
        assert _matrix.eliminate(cons, "k") == _sets._eliminate_reference(cons, "k")

    def test_dim_not_mentioned(self):
        cons = [Constraint.ge(AffineExpr({"i": 1}, 0))] * 3
        assert _matrix.eliminate(cons, "k") == _sets._eliminate_reference(cons, "k")

    def test_contradictions_all_survive(self):
        # Parallel pruning must keep every constant contradiction row
        # (emptiness detection), not collapse them to the tightest.
        cons = [
            Constraint.ge(AffineExpr({"k": 1}, 0)),
            Constraint.ge(AffineExpr({"k": -1}, -3)),  # k <= -3: empty
            Constraint.ge(AffineExpr({"k": 2}, 1)),
            Constraint.ge(AffineExpr({"k": -2}, -9)),
        ] * 10  # above the vectorize + dedupe thresholds
        ref = _sets._eliminate_reference(cons, "k")
        vec = _matrix.eliminate(cons, "k")
        assert vec == ref
        assert any(c.expr.is_constant() and c.expr.constant < 0 for c in vec)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_sweep(self, seed):
        rng = random.Random(seed)
        for _ in range(120):
            cons = _random_system(rng, rng.randint(1, 60))
            name = rng.choice(DIMS)
            vec = _matrix.eliminate(cons, name)
            if vec is None:
                continue
            ref = _sets._eliminate_reference(cons, name)
            assert vec == ref, (cons, name)

    def test_overflow_falls_back_to_none(self):
        big = _matrix.COEFF_LIMIT + 1
        cons = [Constraint.ge(AffineExpr({"k": 1, "i": big}, 0))]
        assert _matrix.eliminate(cons, "k") is None

    def test_dispatcher_is_identical_to_reference(self):
        # The public path through BasicSet must not depend on which
        # implementation the size-threshold dispatch picks.
        cons = _structured_system(tiles=12)
        fast = _sets._eliminate(list(cons), "k")
        ref = _sets._eliminate_reference(list(cons), "k")
        assert fast == ref


coeff = st.integers(min_value=-5, max_value=5)
const = st.integers(min_value=-30, max_value=30)


@st.composite
def systems(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    cons = []
    for _ in range(n):
        coeffs = {d: draw(coeff) for d in DIMS}
        kind = EQ if draw(st.booleans()) and draw(st.booleans()) else GE
        cons.append(Constraint(AffineExpr(coeffs, draw(const)), kind))
    return cons


class TestEliminateProperty:
    @settings(max_examples=60, deadline=None)
    @given(systems(), st.sampled_from(DIMS))
    def test_order_identical_to_reference(self, cons, name):
        vec = _matrix.eliminate(cons, name)
        if vec is None:
            return
        ref = _sets._eliminate_reference(cons, name)
        assert vec == ref  # list equality: same constraints, same order


class TestPruneParallelRows:
    def test_keeps_min_const_at_first_occurrence(self):
        rows = np.array(
            [[1, 0, 9], [0, 1, 4], [1, 0, 2], [1, 0, 5]] * 10, dtype=np.int64
        )
        out = _matrix._prune_parallel_rows(rows)
        assert out.tolist() == [[1, 0, 2], [0, 1, 4]]

    def test_below_threshold_untouched(self):
        rows = np.array([[1, 0, 9], [1, 0, 2]], dtype=np.int64)
        assert _matrix._prune_parallel_rows(rows).tolist() == rows.tolist()

    def test_constant_rows_pass_through(self):
        rows = np.array([[0, 0, -2], [0, 0, -9], [1, 1, 3]] * 15, dtype=np.int64)
        out = _matrix._prune_parallel_rows(rows)
        # All 30 contradiction rows survive; the parallel [1,1,*] rows
        # collapse to one at the first occurrence.
        assert out.tolist().count([0, 0, -2]) == 15
        assert out.tolist().count([0, 0, -9]) == 15
        assert out.tolist().count([1, 1, 3]) == 1
        assert out.tolist()[2] == [1, 1, 3]


class TestPointKernels:
    def test_candidate_grid_matches_product_order(self):
        import itertools

        ranges = [range(0, 3), range(-1, 2), range(2, 4)]
        grid = _matrix.candidate_grid(ranges)
        assert grid.tolist() == [list(p) for p in itertools.product(*ranges)]

    def test_contains_batch_matches_scalar(self):
        cons = [
            Constraint.ge(AffineExpr({"i": 1})),
            Constraint.ge(AffineExpr({"i": -1, "j": 1}, 2)),
            Constraint.eq(AffineExpr({"j": -2, "i": 1}, 1)),
        ]
        dims = ("i", "j")
        grid = _matrix.candidate_grid([range(-4, 5), range(-4, 5)])
        mask = _matrix.contains_batch(grid, dims, cons)
        for row, ok in zip(grid.tolist(), mask.tolist()):
            point = dict(zip(dims, row))
            assert ok == all(c.satisfied_by(point) for c in cons), point

    def test_contains_batch_empty_system(self):
        grid = _matrix.candidate_grid([range(0, 3)])
        mask = _matrix.contains_batch(grid, ("i",), [])
        assert mask.all()

    def test_contains_batch_overflow_returns_none(self):
        dims = ("i", "j")
        points = np.array([[1 << 40, 1]], dtype=np.int64)
        cons_big = [Constraint.ge(AffineExpr({"i": 1 << 25, "j": 1}, 0))]
        cons_small = [Constraint.ge(AffineExpr({"i": 1, "j": 1}, 0))]
        assert _matrix.contains_batch(points, dims, cons_big) is None
        assert _matrix.contains_batch(points, dims, cons_small) is not None
