"""Unit and property tests for union sets and lexicographic extrema."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.affine import AffineExpr
from repro.isl.constraint import Constraint
from repro.isl.sets import BasicSet
from repro.isl.union import UnionSet, lexmax, lexmin

from tests.isl.test_properties import random_sets

e = AffineExpr


def box(lo1, hi1, lo2, hi2):
    return BasicSet.box({"i": (lo1, hi1), "j": (lo2, hi2)}, order=["i", "j"])


class TestConstruction:
    def test_empty_parts_dropped(self):
        u = UnionSet(("i", "j"), [box(0, 3, 0, 3), box(5, 2, 0, 3)])
        assert len(u.parts) == 1

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UnionSet(("i",), [box(0, 1, 0, 1)])

    def test_empty(self):
        assert UnionSet.empty(("i", "j")).is_empty()

    def test_from_set(self):
        u = UnionSet.from_set(box(0, 1, 0, 1))
        assert u.count_points() == 4


class TestAlgebra:
    def test_union_counts_distinct(self):
        a = UnionSet.from_set(box(0, 3, 0, 0))     # 4 points
        b = UnionSet.from_set(box(2, 5, 0, 0))     # 4 points, 2 overlap
        assert a.union(b).count_points() == 6

    def test_intersect_set(self):
        u = UnionSet.from_set(box(0, 7, 0, 7)).intersect_set(box(4, 9, 4, 9))
        assert u.count_points() == 16

    def test_subtract_constraint_ge(self):
        u = UnionSet.from_set(box(0, 7, 0, 0))
        violated = u.subtract_constraint(Constraint.ge("i", 4))
        assert sorted(p["i"] for p in violated.points()) == [0, 1, 2, 3]

    def test_subtract_constraint_eq(self):
        u = UnionSet.from_set(box(0, 4, 0, 0))
        violated = u.subtract_constraint(Constraint.eq("i", 2))
        assert sorted(p["i"] for p in violated.points()) == [0, 1, 3, 4]

    def test_subtract_box(self):
        whole = UnionSet.from_set(box(0, 3, 0, 3))
        hole = box(1, 2, 1, 2)
        diff = whole.subtract(hole)
        assert diff.count_points() == 12
        assert not diff.contains({"i": 1, "j": 2})
        assert diff.contains({"i": 0, "j": 0})

    def test_subtract_disjoint(self):
        whole = UnionSet.from_set(box(0, 3, 0, 3))
        assert whole.subtract(box(10, 12, 10, 12)).count_points() == 16

    def test_subtract_everything(self):
        whole = UnionSet.from_set(box(0, 3, 0, 3))
        assert whole.subtract(box(-5, 9, -5, 9)).is_empty()

    def test_coalesce_drops_subsumed(self):
        u = UnionSet(("i", "j"), [box(0, 7, 0, 7), box(2, 3, 2, 3)])
        coalesced = u.coalesce()
        assert len(coalesced.parts) == 1
        assert coalesced.count_points() == 64


class TestQueries:
    def test_contains_any_part(self):
        u = UnionSet(("i", "j"), [box(0, 1, 0, 1), box(5, 6, 5, 6)])
        assert u.contains({"i": 5, "j": 6})
        assert not u.contains({"i": 3, "j": 3})

    def test_points_deduplicated(self):
        u = UnionSet(("i", "j"), [box(0, 3, 0, 0), box(2, 5, 0, 0)])
        assert u.count_points() == 6

    def test_sample(self):
        u = UnionSet(("i", "j"), [box(5, 2, 0, 0), box(7, 9, 1, 1)])
        point = u.sample()
        assert point is not None and u.contains(point)
        assert UnionSet.empty(("i", "j")).sample() is None


class TestLexExtrema:
    def test_box(self):
        s = box(2, 5, -1, 4)
        assert lexmin(s) == {"i": 2, "j": -1}
        assert lexmax(s) == {"i": 5, "j": 4}

    def test_triangle(self):
        s = BasicSet(
            ("i", "j"),
            [Constraint.ge("i", 0), Constraint.le("i", 4),
             Constraint.ge("j", e.var("i")), Constraint.le("j", 4)],
        )
        assert lexmin(s) == {"i": 0, "j": 0}
        assert lexmax(s) == {"i": 4, "j": 4}

    def test_empty(self):
        assert lexmin(box(3, 1, 0, 0)) is None
        assert lexmax(box(3, 1, 0, 0)) is None

    def test_unbounded_raises(self):
        s = BasicSet(("i",), [Constraint.ge("i", 0)])
        with pytest.raises(ValueError):
            lexmax(s)

    def test_integrally_tight(self):
        # 2i == j with i in [0,3], j in [1,5]: lexmin must land on integers
        s = BasicSet(
            ("i", "j"),
            [Constraint.ge("i", 0), Constraint.le("i", 3),
             Constraint.ge("j", 1), Constraint.le("j", 5),
             Constraint.eq(e.var("i") * 2, e.var("j"))],
        )
        assert lexmin(s) == {"i": 1, "j": 2}
        assert lexmax(s) == {"i": 2, "j": 4}


class TestProperties:
    @given(random_sets(), random_sets())
    @settings(max_examples=30, deadline=None)
    def test_subtract_semantics(self, a, b):
        union = UnionSet.from_set(a)
        diff = union.subtract(b)
        for point in a.points(limit=10000):
            assert diff.contains(point) == (not b.contains(point))

    @given(random_sets())
    @settings(max_examples=30, deadline=None)
    def test_lexmin_is_smallest(self, s):
        if s.is_empty():
            return
        smallest = lexmin(s)
        assert s.contains(smallest)
        key = tuple(smallest[d] for d in s.dims)
        for point in s.points(limit=10000):
            assert key <= tuple(point[d] for d in s.dims)

    @given(random_sets())
    @settings(max_examples=30, deadline=None)
    def test_lexmax_is_largest(self, s):
        if s.is_empty():
            return
        largest = lexmax(s)
        assert s.contains(largest)
        key = tuple(largest[d] for d in s.dims)
        for point in s.points(limit=10000):
            assert key >= tuple(point[d] for d in s.dims)

    @given(random_sets(), random_sets())
    @settings(max_examples=25, deadline=None)
    def test_union_contains_both(self, a, b):
        u = UnionSet.from_set(a).union(UnionSet.from_set(b))
        for point in list(a.points(10000))[:20]:
            assert u.contains(point)
        for point in list(b.points(10000))[:20]:
            assert u.contains(point)
