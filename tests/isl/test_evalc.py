"""Compiled bound/trip evaluators equal the interpreted reference path."""

import random

import pytest

from repro.affine.ir import AffineForOp
from repro.isl import evalc as _evalc
from repro.isl import intern as _intern
from repro.isl.affine import AffineExpr
from repro.isl.sets import LoopBound


@pytest.fixture
def fresh_context():
    context = _intern.InternContext()
    previous = _intern.activate(context)
    yield context
    _intern.activate(previous)


def _reference_evaluate(bound, values):
    value = bound.expr.evaluate(values)
    if bound.is_lower:
        return -((-value) // bound.divisor)
    return value // bound.divisor


class TestCompileBound:
    @pytest.mark.parametrize("divisor,is_lower", [(1, True), (1, False), (3, True), (3, False)])
    def test_matches_interpreter(self, divisor, is_lower, fresh_context):
        expr = AffineExpr({"i": 3, "j": -2}, 7)
        fn = _evalc.compile_bound(expr, divisor, is_lower)
        bound = LoopBound(AffineExpr({"i": 3, "j": -2}, 7 * divisor), divisor, is_lower)
        for i in range(-6, 7):
            for j in range(-6, 7):
                values = {"i": i, "j": j}
                assert fn(values) == _reference_evaluate(
                    LoopBound(expr, divisor, is_lower), values
                )
        del bound

    def test_randomized_against_loopbound(self, fresh_context):
        rng = random.Random(7)
        for _ in range(200):
            coeffs = {d: rng.randint(-9, 9) for d in ("i", "j", "k")}
            expr = AffineExpr(coeffs, rng.randint(-50, 50))
            divisor = rng.randint(1, 8)
            is_lower = rng.random() < 0.5
            bound = LoopBound(expr, divisor, is_lower)
            values = {d: rng.randint(-30, 30) for d in ("i", "j", "k")}
            # LoopBound normalizes (expr, divisor) by their gcd first;
            # compile from the normalized pair like evaluate does.
            fn = _evalc.compile_bound(bound.expr, bound.divisor, bound.is_lower)
            assert fn(values) == _reference_evaluate(bound, values)

    def test_unbound_dim_message_matches_interpreter(self, fresh_context):
        expr = AffineExpr({"i": 1, "missing": 2}, 0)
        fn = _evalc.compile_bound(expr, 1, True)
        with pytest.raises(KeyError) as compiled:
            fn({"i": 1})
        with pytest.raises(KeyError) as interpreted:
            expr.evaluate({"i": 1})
        assert compiled.value.args == interpreted.value.args

    def test_cached_per_context(self, fresh_context):
        expr = AffineExpr({"i": 1}, 0)
        assert _evalc.compile_bound(expr, 2, True) is _evalc.compile_bound(expr, 2, True)
        assert _evalc.compile_bound(expr, 2, True) is not _evalc.compile_bound(
            expr, 2, False
        )

    def test_loopbound_evaluate_uses_compiled_path(self, fresh_context):
        bound = LoopBound(AffineExpr({"i": 5}, 3), 2, True)
        was_reference = _intern.set_reference_mode(False)
        try:
            assert bound.evaluate({"i": 4}) == _reference_evaluate(bound, {"i": 4})
            assert bound._fn is not None
        finally:
            _intern.set_reference_mode(was_reference)


class TestCompileTrip:
    def _random_loop(self, rng):
        def bounds(is_lower, count):
            out = []
            for _ in range(count):
                coeffs = {
                    d: rng.randint(-4, 4)
                    for d in rng.sample(("io", "jo", "ko"), rng.randint(0, 3))
                }
                out.append(
                    LoopBound(
                        AffineExpr(coeffs, rng.randint(-20, 20)),
                        rng.randint(1, 4),
                        is_lower,
                    )
                )
            return out

        return AffineForOp(
            "x", bounds(True, rng.randint(1, 3)), bounds(False, rng.randint(1, 3))
        )

    def test_randomized_against_reference(self, fresh_context):
        rng = random.Random(11)
        for _ in range(300):
            loop = self._random_loop(rng)
            extents = {
                d: rng.randint(1, 40)
                for d in rng.sample(("io", "jo", "ko"), rng.randint(0, 3))
            }
            was_reference = _intern.set_reference_mode(True)
            try:
                expected = loop.max_trip_count(extents)
            finally:
                _intern.set_reference_mode(was_reference)
            assert loop.max_trip_count(extents) == expected, (
                loop.lowers,
                loop.uppers,
                extents,
            )

    def test_constant_bounds_fold_to_constant_trip(self, fresh_context):
        loop = AffineForOp(
            "x",
            [LoopBound(AffineExpr({}, 0), 1, True)],
            [LoopBound(AffineExpr({}, 15), 1, False)],
        )
        assert loop.max_trip_count({}) == 16
        assert loop.max_trip_count({}) == loop.constant_trip_count()

    def test_trip_state_invalidates_on_bound_replacement(self, fresh_context):
        loop = AffineForOp(
            "x",
            [LoopBound(AffineExpr({}, 0), 1, True)],
            [LoopBound(AffineExpr({}, 9), 1, False)],
        )
        assert loop.max_trip_count({}) == 10
        # Passes replace bound lists wholesale; the cached evaluator
        # must not survive that.
        loop.uppers = [LoopBound(AffineExpr({}, 4), 1, False)]
        assert loop.max_trip_count({}) == 5

    def test_compiled_fn_cached_per_signature(self, fresh_context):
        lowers = (LoopBound(AffineExpr({}, 0), 1, True),)
        uppers = (LoopBound(AffineExpr({"io": 1}, -1), 1, False),)
        assert _evalc.compile_trip(lowers, uppers) is _evalc.compile_trip(
            lowers, uppers
        )
