"""Unit tests for polyhedral loop transformations."""

import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.polyir import (
    PolyStatement,
    TransformError,
    interchange,
    skew,
    split,
    tile,
)
from repro.polyir.statement import HardwareOpt


@pytest.fixture()
def stmt():
    with Function("f"):
        i = var("i", 0, 32)
        j = var("j", 0, 16)
        A = placeholder("A", (32, 16))
        B = placeholder("B", (32, 16))
        s = compute("s", [i, j], A(i, j) * 2.0, B(i, j))
    return PolyStatement.from_compute(s, 0)


@pytest.fixture()
def stencil_stmt():
    with Function("g"):
        i = var("i", 1, 9)
        j = var("j", 1, 9)
        A = placeholder("A", (10, 10))
        s = compute("s", [i, j], (A(i - 1, j) + A(i, j - 1)) / 2.0, A(i, j))
    return PolyStatement.from_compute(s, 0)


class TestFromCompute:
    def test_domain_and_order(self, stmt):
        assert stmt.loop_order == ["i", "j"]
        assert stmt.domain.count_points() == 512
        assert stmt.statics == [0, 0, 0]

    def test_schedule_map(self, stmt):
        sched = stmt.schedule_map()
        assert sched.depth == 2
        assert sched.vector_at({"i": 3, "j": 5}) == (0, 3, 0, 5, 0)

    def test_position_sets_leading_static(self):
        with Function("f2"):
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            s = compute("s", [i], A(i) + 1.0, A(i))
        stmt = PolyStatement.from_compute(s, 3)
        assert stmt.statics[0] == 3


class TestInterchange:
    def test_swaps_order(self, stmt):
        new = interchange(stmt, "i", "j")
        assert new.loop_order == ["j", "i"]

    def test_domain_unchanged(self, stmt):
        new = interchange(stmt, "i", "j")
        assert new.domain == stmt.domain

    def test_original_untouched(self, stmt):
        interchange(stmt, "i", "j")
        assert stmt.loop_order == ["i", "j"]

    def test_unknown_level(self, stmt):
        with pytest.raises(KeyError):
            interchange(stmt, "i", "z")


class TestSplit:
    def test_paper_fig9_domain(self):
        """Fig. 9: tiling i in [0,31] by 8 -> i0 in [0,3], i1 in [0,7]."""
        with Function("fig9"):
            t = var("t", 0, 32)
            i = var("i", 0, 32)
            A = placeholder("A", (32,))
            s = compute("S", [t, i], A(i) + 1.0, A(i))
        stmt = PolyStatement.from_compute(s, 0)
        new = split(stmt, "i", 8, "i0", "i1")
        assert new.loop_order == ["t", "i0", "i1"]
        assert new.domain.constant_bounds("i0") == (0, 3)
        assert new.domain.constant_bounds("i1") == (0, 7)
        assert new.domain.count_points() == 1024

    def test_body_rewritten(self, stmt):
        new = split(stmt, "i", 4, "i0", "i1")
        # the access must now use 4*i0 + i1
        import numpy as np

        arrays = {"A": np.arange(512.0).reshape(32, 16), "B": None}
        value = new.body.evaluate({"i0": 2, "i1": 1, "j": 0}, arrays)
        assert value == arrays["A"][9, 0] * 2.0

    def test_statics_grow(self, stmt):
        new = split(stmt, "i", 4, "i0", "i1")
        assert len(new.statics) == len(new.loop_order) + 1

    def test_non_divisible_extent(self):
        """Splitting 10 by 4 keeps exactly 10 points (ragged last tile)."""
        with Function("r"):
            i = var("i", 0, 10)
            A = placeholder("A", (10,))
            s = compute("s", [i], A(i) + 1.0, A(i))
        stmt = PolyStatement.from_compute(s, 0)
        new = split(stmt, "i", 4, "i0", "i1")
        assert new.domain.count_points() == 10

    def test_factor_validation(self, stmt):
        with pytest.raises(TransformError):
            split(stmt, "i", 1, "i0", "i1")

    def test_name_collision_rejected(self, stmt):
        with pytest.raises(TransformError):
            split(stmt, "i", 4, "j", "i1")
        with pytest.raises(TransformError):
            split(stmt, "i", 4, "x", "x")

    def test_hw_opts_on_split_level_dropped(self, stmt):
        stmt.add_hw_opt(HardwareOpt("pipeline", "i", 1))
        stmt.add_hw_opt(HardwareOpt("unroll", "j", 2))
        new = split(stmt, "i", 4, "i0", "i1")
        kinds = [(o.kind, o.level) for o in new.hw_opts]
        assert kinds == [("unroll", "j")]


class TestTile:
    def test_loop_order(self, stmt):
        new = tile(stmt, "i", "j", 4, 4, "i0", "j0", "i1", "j1")
        assert new.loop_order == ["i0", "j0", "i1", "j1"]

    def test_extents(self, stmt):
        new = tile(stmt, "i", "j", 4, 8, "i0", "j0", "i1", "j1")
        assert new.domain.constant_bounds("i0") == (0, 7)
        assert new.domain.constant_bounds("j0") == (0, 1)
        assert new.domain.constant_bounds("i1") == (0, 3)
        assert new.domain.constant_bounds("j1") == (0, 7)

    def test_cardinality_preserved(self, stmt):
        new = tile(stmt, "i", "j", 4, 4, "i0", "j0", "i1", "j1")
        assert new.domain.count_points() == 512

    def test_unit_factor_i(self, stmt):
        new = tile(stmt, "i", "j", 1, 4, "i0", "j0", "i1", "j1")
        assert new.loop_order == ["i0", "j0", "i1", "j1"]
        assert new.domain.constant_bounds("i0") == (0, 0)
        assert new.domain.constant_bounds("i1") == (0, 31)
        assert new.domain.count_points() == 512

    def test_unit_factor_both(self, stmt):
        new = tile(stmt, "i", "j", 1, 1, "i0", "j0", "i1", "j1")
        assert new.domain.count_points() == 512
        assert new.domain.constant_bounds("j0") == (0, 0)

    def test_non_adjacent_rejected(self):
        with Function("na"):
            i = var("i", 0, 4)
            j = var("j", 0, 4)
            k = var("k", 0, 4)
            A = placeholder("A", (4, 4))
            s = compute("s", [i, k, j], A(i, j) + 1.0, A(i, j))
        stmt = PolyStatement.from_compute(s, 0)
        with pytest.raises(TransformError):
            tile(stmt, "i", "j", 2, 2, "a", "b", "c", "d")


class TestSkew:
    def test_loop_order_renamed(self, stencil_stmt):
        new = skew(stencil_stmt, "i", "j", 1, "ip", "jp")
        assert new.loop_order == ["ip", "jp"]

    def test_domain_is_sheared(self, stencil_stmt):
        new = skew(stencil_stmt, "i", "j", 1, "ip", "jp")
        # jp = i + j ranges over [2, 16]
        assert new.domain.constant_bounds("jp") == (2, 16)
        assert new.domain.count_points() == 64

    def test_body_rewritten(self, stencil_stmt):
        import numpy as np

        new = skew(stencil_stmt, "i", "j", 1, "ip", "jp")
        arrays = {"A": np.arange(100.0).reshape(10, 10)}
        # (ip, jp) = (2, 5) corresponds to (i, j) = (2, 3)
        value = new.body.evaluate({"ip": 2, "jp": 5}, arrays)
        assert value == (arrays["A"][1, 3] + arrays["A"][2, 2]) / 2.0

    def test_dependence_becomes_parallel(self, stencil_stmt):
        """After skewing, both deps point strictly along ip: jp is free."""
        from repro.isl.affine import AffineExpr
        from repro.isl.constraint import Constraint

        new = skew(stencil_stmt, "i", "j", 1, "ip", "jp")
        # write at (ip, jp) -> A[ip][jp-ip]; read A[i-1][j] = A[ip-1][jp-ip]
        # sink (ip', jp') reads what (ip, jp) wrote iff ip'=ip+1, jp'=jp+1
        # hence along jp at fixed ip there is no dependence.
        # Verify via the domain: iterate wavefronts jp and check each
        # (ip, jp) depends only on smaller jp.
        points = list(new.domain.points())
        writes = {}
        for p in points:
            writes[(p["ip"], p["jp"] - p["ip"])] = p["jp"]
        for p in points:
            i, j = p["ip"], p["jp"] - p["ip"]
            for (ri, rj) in [(i - 1, j), (i, j - 1)]:
                if (ri, rj) in writes:
                    assert writes[(ri, rj)] < p["jp"]

    def test_zero_factor_rejected(self, stencil_stmt):
        with pytest.raises(TransformError):
            skew(stencil_stmt, "i", "j", 0, "ip", "jp")

    def test_negative_factor(self, stencil_stmt):
        new = skew(stencil_stmt, "i", "j", -1, "ip", "jp")
        assert new.domain.count_points() == 64


class TestComposition:
    def test_split_then_interchange(self, stmt):
        new = interchange(split(stmt, "i", 4, "i0", "i1"), "i1", "j")
        assert new.loop_order == ["i0", "j", "i1"]
        assert new.domain.count_points() == 512

    def test_tile_then_split_inner(self, stmt):
        new = tile(stmt, "i", "j", 8, 8, "i0", "j0", "i1", "j1")
        new = split(new, "j1", 2, "j1a", "j1b")
        assert new.loop_order == ["i0", "j0", "i1", "j1a", "j1b"]
        assert new.domain.count_points() == 512

    def test_skew_then_interchange(self, stencil_stmt):
        new = interchange(skew(stencil_stmt, "i", "j", 1, "ip", "jp"), "ip", "jp")
        assert new.loop_order == ["jp", "ip"]
        assert new.domain.count_points() == 64
