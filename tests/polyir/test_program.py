"""Unit tests for PolyProgram: directive replay, after/fuse, AST annotation."""

import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.isl.astbuild import BlockNode, ForNode, UserNode
from repro.polyir import PolyProgram, lower_function


def gemm_function(n=32):
    with Function("gemm") as f:
        i = var("i", 0, n)
        j = var("j", 0, n)
        k = var("k", 0, n)
        A = placeholder("A", (n, n))
        B = placeholder("B", (n, n))
        C = placeholder("C", (n, n))
        s = compute("s", [k, i, j], A(i, j) + B(i, k) * C(k, j), A(i, j))
    return f, s, (i, j, k)


def loops_of(ast):
    return [n for n in ast.walk() if isinstance(n, ForNode)]


def loop_by_iter(ast, name):
    return next(n for n in loops_of(ast) if n.iterator == name)


class TestDirectiveReplay:
    def test_paper_fig6_pipeline(self):
        """GEMM tiled 4x4, pipelined at j0, unrolled at i1/j1 (Figs. 5-6)."""
        f, s, (i, j, k) = gemm_function()
        s.tile(i, j, 4, 4, "i0", "j0", "i1", "j1")
        s.pipeline("j0", 1)
        s.unroll("i1", 4)
        s.unroll("j1", 4)
        ast = lower_function(f).build_ast()
        iters = [l.iterator for l in loops_of(ast)]
        assert iters == ["k", "i0", "j0", "i1", "j1"]
        assert loop_by_iter(ast, "j0").annotations.get("pipeline") == 1
        assert loop_by_iter(ast, "i1").annotations.get("unroll") == 4
        assert loop_by_iter(ast, "j1").annotations.get("unroll") == 4
        trips = [l.constant_trip_count() for l in loops_of(ast)]
        assert trips == [32, 8, 8, 4, 4]

    def test_interchange_directive(self):
        f, s, (i, j, k) = gemm_function()
        s.interchange(k, j)
        ast = lower_function(f).build_ast()
        assert [l.iterator for l in loops_of(ast)] == ["j", "i", "k"]

    def test_skew_directive(self):
        with Function("st") as f:
            i = var("i", 1, 9)
            j = var("j", 1, 9)
            A = placeholder("A", (10, 10))
            s = compute("s", [i, j], (A(i - 1, j) + A(i, j - 1)) * 0.5, A(i, j))
        s.skew(i, j, 1, "ip", "jp")
        s.interchange("ip", "jp")
        ast = lower_function(f).build_ast()
        assert [l.iterator for l in loops_of(ast)] == ["jp", "ip"]

    def test_pipeline_unknown_level_raises(self):
        f, s, _ = gemm_function()
        s.pipeline("nope")
        with pytest.raises(KeyError):
            lower_function(f)

    def test_directives_apply_in_order(self):
        f, s, (i, j, k) = gemm_function()
        s.split(i, 4, "i0", "i1")
        s.interchange("i1", "j")   # references the split result
        ast = lower_function(f).build_ast()
        assert [l.iterator for l in loops_of(ast)] == ["k", "i0", "j", "i1"]


class TestAfterAndFuse:
    def two_stmt_function(self):
        with Function("pair") as f:
            n = 8
            i = var("i", 0, n)
            A = placeholder("A", (n,))
            B = placeholder("B", (n,))
            C = placeholder("C", (n,))
            s1 = compute("s1", [i], A(i) + 1.0, B(i))
            s2 = compute("s2", [i], B(i) * 2.0, C(i))
        return f, s1, s2, i

    def test_default_sequencing(self):
        f, s1, s2, i = self.two_stmt_function()
        ast = lower_function(f).build_ast()
        # two separate loops under a block
        assert isinstance(ast, BlockNode)
        assert len(loops_of(ast)) == 2

    def test_after_at_level_fuses(self):
        f, s1, s2, i = self.two_stmt_function()
        s2.after(s1, i)
        ast = lower_function(f).build_ast()
        assert len(loops_of(ast)) == 1
        users = [n.name for n in ast.walk() if isinstance(n, UserNode)]
        assert users == ["s1", "s2"]

    def test_fuse_directive(self):
        f, s1, s2, i = self.two_stmt_function()
        s2.fuse(s1, i)
        ast = lower_function(f).build_ast()
        assert len(loops_of(ast)) == 1

    def test_after_top_level_reorders(self):
        f, s1, s2, i = self.two_stmt_function()
        s1.after(s2, None)  # run s1 after s2
        prog = lower_function(f)
        st1, st2 = prog.statement("s1"), prog.statement("s2")
        assert st2.statics[0] < st1.statics[0]

    def test_fuse_too_deep_rejected(self):
        with Function("deep") as f:
            i = var("i", 0, 4)
            j = var("j", 0, 4)
            A = placeholder("A", (4, 4))
            B = placeholder("B", (4,))
            s1 = compute("s1", [i, j], A(i, j) + 1.0, A(i, j))
            s2 = compute("s2", [i], B(i) * 2.0, B(i))
        s2.after(s1, j)
        from repro.polyir import TransformError

        with pytest.raises(TransformError):
            lower_function(f)

    def test_chained_after(self):
        with Function("chain") as f:
            n = 4
            i = var("i", 0, n)
            A = placeholder("A", (n,))
            B = placeholder("B", (n,))
            C = placeholder("C", (n,))
            D = placeholder("D", (n,))
            s1 = compute("s1", [i], A(i) + 1.0, B(i))
            s2 = compute("s2", [i], B(i) * 2.0, C(i))
            s3 = compute("s3", [i], C(i) - 1.0, D(i))
        s2.after(s1, i)
        s3.after(s2, i)
        ast = lower_function(f).build_ast()
        assert len(loops_of(ast)) == 1
        users = [n.name for n in ast.walk() if isinstance(n, UserNode)]
        assert users == ["s1", "s2", "s3"]


class TestAnnotationMerging:
    def test_fused_pipeline_takes_min_ii(self):
        with Function("mrg") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            B = placeholder("B", (8,))
            s1 = compute("s1", [i], A(i) + 1.0, A(i))
            s2 = compute("s2", [i], B(i) * 2.0, B(i))
        s2.after(s1, i)
        s1.pipeline(i, 4)
        s2.pipeline(i, 2)
        ast = lower_function(f).build_ast()
        assert loop_by_iter(ast, "i").annotations["pipeline"] == 2

    def test_unroll_complete_dominates(self):
        with Function("mrg2") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            B = placeholder("B", (8,))
            s1 = compute("s1", [i], A(i) + 1.0, A(i))
            s2 = compute("s2", [i], B(i) * 2.0, B(i))
        s2.after(s1, i)
        s1.unroll(i, 2)
        s2.unroll(i, 0)
        ast = lower_function(f).build_ast()
        assert loop_by_iter(ast, "i").annotations["unroll"] == 0


class TestStatementLookup:
    def test_statement_and_replace(self):
        f, s, _ = gemm_function()
        prog = PolyProgram(f)
        assert prog.statement("s").name == "s"
        with pytest.raises(KeyError):
            prog.statement("zzz")

    def test_user_payload_is_statement(self):
        f, s, _ = gemm_function()
        prog = lower_function(f)
        ast = prog.build_ast()
        user = next(n for n in ast.walk() if isinstance(n, UserNode))
        assert user.payload is prog.statement("s")
