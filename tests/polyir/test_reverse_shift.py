"""Unit tests for the reverse and shift transformations."""

import numpy as np
import pytest

from repro.affine import interpret
from repro.dsl import Function, compute, placeholder, var
from repro.pipeline import lower_to_affine
from repro.polyir import PolyProgram, TransformError, reverse, shift
from repro.polyir.statement import PolyStatement


def make_stmt(extent=8):
    with Function("f"):
        i = var("i", 0, extent)
        A = placeholder("A", (extent,))
        B = placeholder("B", (extent,))
        s = compute("s", [i], A(i) * 2.0, B(i))
    return PolyStatement.from_compute(s, 0)


class TestReverse:
    def test_domain_preserved(self):
        new = reverse(make_stmt(), "i", "ir")
        assert new.loop_order == ["ir"]
        assert new.domain.count_points() == 8
        assert new.domain.constant_bounds("ir") == (0, 7)

    def test_access_rewritten(self):
        new = reverse(make_stmt(), "i", "ir")
        arrays = {"A": np.arange(8.0), "B": np.zeros(8)}
        # iteration ir=0 touches the original i=7
        value = new.body.evaluate({"ir": 0}, arrays)
        assert value == 14.0

    def test_reverse_skewed_dim_preserves_points(self):
        """Reversal is exact set substitution, so even skewed (envelope-
        bounded) dims keep their integer points."""
        from repro.polyir import skew

        with Function("g"):
            i = var("i", 0, 8)
            j = var("j", 0, 8)
            A = placeholder("A", (8, 8))
            s = compute("s", [i, j], A(i, j) + 1.0, A(i, j))
        stmt = PolyStatement.from_compute(s, 0)
        skewed = skew(stmt, "i", "j", 1, "ip", "jp")
        reversed_stmt = reverse(skewed, "jp", "jpr")
        assert reversed_stmt.domain.count_points() == 64

    def test_name_collision_rejected(self):
        with pytest.raises(TransformError):
            reverse(make_stmt(), "i", "i")


class TestShift:
    def test_domain_translated(self):
        new = shift(make_stmt(), "i", 5, "is_")
        assert new.domain.constant_bounds("is_") == (5, 12)
        assert new.domain.count_points() == 8

    def test_access_rewritten(self):
        new = shift(make_stmt(), "i", 5, "is_")
        arrays = {"A": np.arange(8.0), "B": np.zeros(8)}
        assert new.body.evaluate({"is_": 5}, arrays) == 0.0
        assert new.body.evaluate({"is_": 12}, arrays) == 14.0

    def test_negative_offset(self):
        new = shift(make_stmt(), "i", -3, "is_")
        assert new.domain.constant_bounds("is_") == (-3, 4)

    def test_zero_offset_rejected(self):
        with pytest.raises(TransformError):
            shift(make_stmt(), "i", 0, "is_")


class TestDirectivesEndToEnd:
    def test_reverse_directive_semantics(self):
        with Function("rv") as f:
            i = var("i", 0, 10)
            A = placeholder("A", (10,))
            B = placeholder("B", (10,))
            s = compute("s", [i], A(i) + 1.0, B(i))
        s.reverse(i, "ir")
        arrays = f.allocate_arrays(seed=1)
        want = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(want)
        interpret(lower_to_affine(f), arrays)
        assert np.array_equal(arrays["B"], want["B"])

    def test_shift_directive_semantics(self):
        with Function("sh") as f:
            i = var("i", 0, 10)
            A = placeholder("A", (10,))
            B = placeholder("B", (10,))
            s = compute("s", [i], A(i) * 3.0, B(i))
        s.shift(i, 7, "is_")
        arrays = f.allocate_arrays(seed=2)
        want = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(want)
        interpret(lower_to_affine(f), arrays)
        assert np.array_equal(arrays["B"], want["B"])

    def test_shift_then_split(self):
        with Function("comp") as f:
            i = var("i", 0, 16)
            A = placeholder("A", (16,))
            s = compute("s", [i], A(i) + 1.0, A(i))
        s.shift(i, 4, "is_").split("is_", 4, "a", "b")
        prog = PolyProgram(f).apply_schedule()
        assert prog.statement("s").loop_order == ["a", "b"]
        arrays = f.allocate_arrays(seed=3)
        want = {k: v.copy() for k, v in arrays.items()}
        f.reference_execute(want)
        interpret(lower_to_affine(f), arrays)
        assert np.array_equal(arrays["A"], want["A"])

    def test_reverse_illegal_on_scan_detected_by_oracle(self):
        """Reversal of a prefix scan flips the dependence; the functional
        oracle sees the difference (the DSE would refuse the move)."""
        with Function("scan") as f:
            i = var("i", 1, 10)
            A = placeholder("A", (10,))
            s = compute("s", [i], A(i) + A(i - 1), A(i))
        s.reverse(i, "ir")
        arrays = f.allocate_arrays(seed=4)
        want = {k: v.copy() for k, v in arrays.items()}
        with Function("scan2") as f2:
            i2 = var("i", 1, 10)
            A2 = placeholder("A", (10,))
            compute("s", [i2], A2(i2) + A2(i2 - 1), A2(i2))
        f2.reference_execute(want)
        interpret(lower_to_affine(f), arrays)
        assert not np.array_equal(arrays["A"], want["A"])


class TestFixedPointType:
    def test_fixed_through_pipeline(self):
        from repro.dsl import fixed

        dtype = fixed(16, 8)
        with Function("fx") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,), dtype)
            B = placeholder("B", (8,), dtype)
            compute("s", [i], A(i) * 2.0, B(i))
        arrays = f.allocate_arrays(seed=5)
        # inputs are quantized to the fixed-point grid
        step = 2.0 ** -dtype.frac_bits
        assert np.allclose(arrays["A"] / step, np.round(arrays["A"] / step))
        interpret(lower_to_affine(f), arrays)
        assert np.allclose(arrays["B"], arrays["A"] * 2.0)

    def test_fixed_c_name_in_codegen(self):
        from repro.dsl import fixed
        from repro.pipeline import compile_to_hls_c

        with Function("fx2") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,), fixed(12, 4))
            compute("s", [i], A(i) + 1.0, A(i))
        assert "ap_fixed<12, 4> A[8]" in compile_to_hls_c(f)

    def test_fixed_cheaper_than_float(self):
        from repro.dsl import fixed
        from repro.hls import oplib
        from repro.dsl import dtypes

        fx = oplib.op_cost("*", fixed(16, 8))
        fl = oplib.op_cost("*", dtypes.float32)
        assert fx.dsp <= fl.dsp
        assert fx.latency <= fl.latency

    def test_fixed_validation(self):
        from repro.dsl import fixed

        with pytest.raises(ValueError):
            fixed(8, 0)
        with pytest.raises(ValueError):
            fixed(8, 9)
