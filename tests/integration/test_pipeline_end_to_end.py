"""Integration tests: the full DSL -> HLS C pipeline on real workloads."""

import numpy as np
import pytest

from repro.affine import interpret
from repro.dsl import Function, compute, placeholder, var
from repro.hlsgen import generate_hls_c
from repro.pipeline import (
    analyze,
    compile_to_hls_c,
    estimate,
    lower_to_affine,
    lower_to_polyhedral,
)
from repro.workloads import image, polybench, stencils


class TestPipelineStages:
    def test_all_levels_reachable(self):
        f = polybench.gemm(8)
        graph = analyze(f)
        assert set(graph.nodes) == {"s"}
        program = lower_to_polyhedral(f)
        assert program.statement("s").depth() == 3
        func_op = lower_to_affine(f)
        assert len(func_op.loops()) == 3
        code = compile_to_hls_c(f)
        assert "void gemm" in code

    def test_function_convenience_methods(self):
        f = polybench.gemm(8)
        assert "void gemm" in f.codegen()
        assert f.lower().name == "gemm"
        assert f.estimate().total_cycles > 0


class TestDsePipelineCorrectness:
    """auto-DSE then full lowering must preserve semantics everywhere."""

    CASES = [
        ("gemm", lambda: polybench.gemm(16)),
        ("bicg", lambda: polybench.bicg(16)),
        ("gesummv", lambda: polybench.gesummv(16)),
        ("2mm", lambda: polybench.mm2(8)),
        ("3mm", lambda: polybench.mm3(8)),
        ("jacobi-1d", lambda: stencils.jacobi_1d(16, steps=4)),
        ("jacobi-2d", lambda: stencils.jacobi_2d(10, steps=2)),
        ("heat-1d", lambda: stencils.heat_1d(16, steps=4)),
        ("seidel", lambda: stencils.seidel(8, steps=2)),
        ("blur", lambda: image.blur(12)),
        ("edgedetect", lambda: image.edge_detect(12)),
    ]

    @pytest.mark.parametrize("name,factory", CASES, ids=[c[0] for c in CASES])
    def test_dse_preserves_semantics(self, name, factory):
        reference_fn = factory()
        expected = reference_fn.allocate_arrays(seed=17)
        reference_fn.reference_execute(expected)

        optimized_fn = factory()
        optimized_fn.auto_DSE()
        got = optimized_fn.allocate_arrays(seed=17)
        interpret(lower_to_affine(optimized_fn), got)
        for array in expected:
            np.testing.assert_allclose(
                got[array], expected[array], rtol=1e-3, atol=1e-5, err_msg=array
            )

    @pytest.mark.parametrize("name,factory", CASES[:5], ids=[c[0] for c in CASES[:5]])
    def test_dse_emits_valid_hls_c(self, name, factory):
        f = factory()
        f.auto_DSE()
        code = compile_to_hls_c(f)
        assert "#pragma HLS pipeline" in code
        assert code.count("{") == code.count("}")


class TestEstimatorConsistency:
    def test_baseline_slower_than_optimized(self):
        base = estimate(polybench.gemm(64))
        f = polybench.gemm(64)
        f.auto_DSE()
        assert estimate(f).total_cycles < base.total_cycles

    def test_report_consistent_with_dse_report(self):
        f = polybench.gemm(64)
        result = f.auto_DSE()
        fresh = estimate(f)
        assert fresh.total_cycles == result.report.total_cycles
        assert fresh.resources.dsp == result.report.resources.dsp


class TestUserScheduleEquivalence:
    def test_manual_primitives_equal_dse_design(self):
        """Paper Fig. 16: manual primitives can reproduce the autoDSE design."""
        auto_fn = polybench.gemm(32)
        result = auto_fn.auto_DSE()
        auto_cycles = result.report.total_cycles

        manual_fn = polybench.gemm(32)
        for directive in result.schedule:
            manual_fn.schedule.add(directive)
        for name, scheme in (
            (p.name, p.partition_scheme) for p in auto_fn.placeholders()
        ):
            if scheme is not None:
                target = next(q for q in manual_fn.placeholders() if q.name == name)
                target.partition(list(scheme.factors), scheme.kind)
        assert estimate(manual_fn).total_cycles == auto_cycles


class TestMultiFunctionIsolation:
    def test_functions_do_not_leak_state(self):
        f1 = polybench.gemm(8)
        f1.auto_DSE()
        f2 = polybench.gemm(8)
        assert len(f2.schedule) == 0
        assert all(p.partition_scheme is None for p in f2.placeholders())
