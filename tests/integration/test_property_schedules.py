"""Property-based tests: random schedules preserve program semantics.

The central guarantee of a scheduling framework is that *any* sequence
of scheduling primitives leaves the computed function unchanged.  These
tests drive the full pipeline (DSL -> polyhedral IR -> affine dialect ->
interpreter) under hypothesis-generated schedules and compare against
the DSL reference semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.affine import interpret
from repro.dsl import Function, compute, placeholder, var
from repro.pipeline import lower_to_affine


def make_gemm(n=8):
    with Function("g") as f:
        i = var("i", 0, n)
        j = var("j", 0, n)
        k = var("k", 0, n)
        A = placeholder("A", (n, n))
        B = placeholder("B", (n, n))
        C = placeholder("C", (n, n))
        s = compute("s", [k, i, j], A(i, j) + B(i, k) * C(k, j), A(i, j))
    return f, s


def make_elementwise(n=10):
    with Function("e") as f:
        i = var("i", 0, n)
        j = var("j", 0, n)
        A = placeholder("A", (n, n))
        B = placeholder("B", (n, n))
        s = compute("s", [i, j], A(i, j) * 2.0 + 1.0, B(i, j))
    return f, s


class _ScheduleState:
    """Tracks live loop names so generated directives stay well-formed."""

    def __init__(self, dims):
        self.dims = list(dims)
        self.counter = 0

    def fresh(self):
        self.counter += 1
        return f"x{self.counter}"


@st.composite
def schedules(draw, dims, allow_skew=True, max_ops=4):
    """A random sequence of (op, args) tuples over evolving loop names."""
    state = _ScheduleState(dims)
    ops = []
    choices = ["interchange", "split", "unroll", "pipeline"]
    if allow_skew:
        choices.append("skew")
    for _ in range(draw(st.integers(min_value=0, max_value=max_ops))):
        op = draw(st.sampled_from(choices))
        if op == "interchange" and len(state.dims) >= 2:
            a, b = draw(
                st.lists(
                    st.sampled_from(state.dims), min_size=2, max_size=2, unique=True
                )
            )
            ops.append(("interchange", (a, b)))
        elif op == "split":
            dim = draw(st.sampled_from(state.dims))
            factor = draw(st.integers(min_value=2, max_value=4))
            outer, inner = state.fresh(), state.fresh()
            ops.append(("split", (dim, factor, outer, inner)))
            state.dims[state.dims.index(dim):  state.dims.index(dim) + 1] = [outer, inner]
        elif op == "skew" and len(state.dims) >= 2:
            a, b = draw(
                st.lists(
                    st.sampled_from(state.dims), min_size=2, max_size=2, unique=True
                )
            )
            factor = draw(st.sampled_from([-2, -1, 1, 2]))
            na, nb = state.fresh(), state.fresh()
            ops.append(("skew", (a, b, factor, na, nb)))
            state.dims[state.dims.index(a)] = na
            state.dims[state.dims.index(b)] = nb
        elif op == "unroll":
            ops.append(("unroll", (draw(st.sampled_from(state.dims)),
                                   draw(st.sampled_from([0, 2, 4])))))
        elif op == "pipeline":
            ops.append(("pipeline", (draw(st.sampled_from(state.dims)), 1)))
    return ops


def apply_ops(s, ops):
    for op, args in ops:
        getattr(s, op)(*args)


def run_both(factory, ops, seed):
    f, s = factory()
    apply_ops(s, ops)
    expected = f.allocate_arrays(seed=seed)
    reference_fn, _ = factory()
    reference_fn.reference_execute(expected)
    got = f.allocate_arrays(seed=seed)
    interpret(lower_to_affine(f), got)
    return expected, got


class TestRandomSchedulesElementwise:
    """Any transform sequence is legal on a dependence-free kernel."""

    @given(schedules(["i", "j"]), st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_semantics_exact(self, ops, seed):
        expected, got = run_both(make_elementwise, ops, seed)
        for name in expected:
            assert np.array_equal(got[name], expected[name]), (name, ops)


class TestRandomSchedulesGemm:
    """Transforms of the parallel dims (i, j) never touch the k-order."""

    @given(schedules(["i", "j"]), st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_semantics_exact(self, ops, seed):
        expected, got = run_both(make_gemm, ops, seed)
        assert np.array_equal(got["A"], expected["A"]), ops

    @given(schedules(["k"], allow_skew=False, max_ops=2),
           st.integers(min_value=0, max_value=99))
    @settings(max_examples=20, deadline=None)
    def test_splitting_the_reduction_preserves_order(self, ops, seed):
        """Splits of k keep accumulation order, so results stay exact.

        Interchanging the split halves *does* reorder the accumulation
        (hypothesis found exactly that), so only order-preserving ops
        are exercised here.
        """
        ops = [op for op in ops if op[0] != "interchange"]
        expected, got = run_both(make_gemm, ops, seed)
        assert np.array_equal(got["A"], expected["A"]), ops


class TestStoreCoverage:
    """Every transformed program writes exactly the domain's points."""

    @given(schedules(["i", "j"]), st.integers(min_value=0, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_all_points_written_once_pattern(self, ops, seed):
        f, s = make_elementwise()
        apply_ops(s, ops)
        got = f.allocate_arrays(seed=seed)
        sentinel = np.full_like(got["B"], -12345.0)
        got["B"] = sentinel.copy()
        interpret(lower_to_affine(f), got)
        assert not np.any(got["B"] == -12345.0), "some iteration was dropped"
