"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_suites(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("polybench", "stencils", "image", "dnn", "gemm", "seidel"):
            assert name in out


class TestCompile:
    def test_emit_c(self, capsys):
        assert main(["compile", "gemm", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "void gemm" in out

    def test_emit_mlir(self, capsys):
        assert main(["compile", "bicg", "--size", "8", "--emit", "mlir"]) == 0
        assert "func.func @bicg" in capsys.readouterr().out

    def test_emit_report(self, capsys):
        assert main(["compile", "gemm", "--size", "16", "--emit", "report"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_emit_all(self, capsys):
        assert main(["compile", "gemm", "--size", "8", "--emit", "all"]) == 0
        out = capsys.readouterr().out
        assert "void gemm" in out and "func.func" in out and "cycles" in out

    def test_dse_flag(self, capsys):
        assert main(["compile", "gemm", "--size", "32", "--dse"]) == 0
        captured = capsys.readouterr()
        assert "#pragma HLS pipeline" in captured.out
        assert "auto-DSE" in captured.err

    def test_resource_fraction(self, capsys):
        assert main([
            "compile", "gemm", "--size", "32", "--dse",
            "--resource-fraction", "0.25", "--emit", "report",
        ]) == 0

    def test_unknown_workload(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["compile", "nonesuch"])
        assert "unknown workload" in str(excinfo.value)

    def test_default_size_works(self, capsys):
        assert main(["compile", "jacobi-1d"]) == 0
        assert "void jacobi_1d" in capsys.readouterr().out


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "fig2", "--size", "32"]) == 0
        assert "BICG motivating example" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "table99"])
        assert "unknown experiment" in str(excinfo.value)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "gemm"])
        assert args.size is None
        assert args.emit == "c"
        assert not args.dse


class TestCosimCli:
    def test_emit_testbench(self, capsys):
        from repro.cli import main

        assert main(["compile", "gemm", "--size", "8", "--emit", "testbench"]) == 0
        out = capsys.readouterr().out
        assert "int main(void)" in out

    def test_cosim_flag(self, capsys):
        import shutil

        import pytest as _pytest

        if shutil.which("gcc") is None and shutil.which("cc") is None:
            _pytest.skip("no C compiler")
        from repro.cli import main

        assert main(["compile", "gemm", "--size", "8", "--cosim", "--emit", "report"]) == 0
        assert "MATCH" in capsys.readouterr().err


class TestDseStatsSingleCpuWarning:
    """`repro dse --stats` warns when speedup data is from one CPU."""

    def test_warns_when_parallel_run_on_one_cpu(self, capsys, monkeypatch):
        from repro.util import pool

        monkeypatch.setattr(pool, "available_jobs", lambda: 1)
        assert main(["dse", "gemm", "--size", "16", "--jobs", "2", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "single-CPU run" in err

    def test_silent_with_enough_cpus(self, capsys, monkeypatch):
        from repro.util import pool

        monkeypatch.setattr(pool, "available_jobs", lambda: 8)
        assert main(["dse", "gemm", "--size", "16", "--jobs", "2", "--stats"]) == 0
        assert "single-CPU run" not in capsys.readouterr().err

    def test_silent_for_sequential_run(self, capsys, monkeypatch):
        from repro.util import pool

        monkeypatch.setattr(pool, "available_jobs", lambda: 1)
        assert main(["dse", "gemm", "--size", "16", "--stats"]) == 0
        assert "single-CPU run" not in capsys.readouterr().err
