"""Campaign runner + ``repro fuzz`` CLI contract.

The load-bearing promises: campaigns are deterministic in ``--seed``
regardless of ``--jobs``, time budgets stop cleanly with ``FUZ004``
(exit 0 -- running out of time is not a failure), and failing campaigns
exit 1 with repro scripts plus ``summary.json`` under ``--out``.
"""

import json

import numpy as np
import pytest

from repro.affine import compile as _compile
from repro.cli import main
from repro.diagnostics import DiagnosticEngine
from repro.fuzz import CampaignResult, FuzzOptions, run_campaign
from repro.fuzz.runner import plan_trials
from repro.isl import intern as _intern

pytestmark = pytest.mark.fuzz

_FAST = dict(workloads=("gemm", "bicg"), sizes=(8,))


class TestPlanning:
    def test_plan_is_deterministic(self):
        options = FuzzOptions(seed=11, trials=10, **_FAST)
        assert plan_trials(options) == plan_trials(options)

    def test_plan_round_robins_the_grid(self):
        options = FuzzOptions(seed=0, trials=4, **_FAST)
        assert [p[0] for p in plan_trials(options)] == [
            "gemm", "bicg", "gemm", "bicg",
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            dict(trials=0),
            dict(jobs=0),
            dict(max_directives=0),
            dict(time_budget_s=-1.0),
            dict(workloads=()),
            dict(sizes=()),
        ],
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            FuzzOptions(**bad).validate()

    def test_validate_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload") as excinfo:
            FuzzOptions(workloads=("gemm", "nope")).validate()
        assert excinfo.value.diagnostic.code == "WLD001"


class TestCampaign:
    def test_clean_campaign_passes(self):
        campaign = run_campaign(FuzzOptions(seed=3, trials=6, **_FAST))
        assert campaign.trials_run == 6
        assert campaign.passed == 6
        assert not campaign.failures
        assert not campaign.budget_exhausted
        assert campaign.elapsed_s > 0

    def test_jobs_do_not_change_results(self):
        serial = run_campaign(FuzzOptions(seed=5, trials=8, jobs=1, **_FAST))
        parallel = run_campaign(FuzzOptions(seed=5, trials=8, jobs=2, **_FAST))
        assert [r.as_dict() for r in serial.results] == [
            r.as_dict() for r in parallel.results
        ]

    def test_time_budget_stops_with_fuz004(self):
        engine = DiagnosticEngine()
        campaign = run_campaign(
            FuzzOptions(seed=1, trials=10_000, time_budget_s=1.0, **_FAST),
            engine=engine,
        )
        assert campaign.budget_exhausted
        assert campaign.trials_run < 10_000
        assert any(d.code == "FUZ004" for d in engine.warnings())

    def test_failing_campaign_writes_repro_and_summary(self, tmp_path, monkeypatch):
        class BadNp:
            def __getattr__(self, name):
                return getattr(np, name)

            def arange(self, lo, hi):
                return np.arange(lo, max(lo, hi - 1))

        _intern.active().kernel_fns.clear()
        monkeypatch.setitem(_compile._GLOBALS, "_np", BadNp())
        try:
            campaign = run_campaign(
                FuzzOptions(
                    seed=0, trials=4, workloads=("gemm",), sizes=(8,),
                    out_dir=str(tmp_path),
                )
            )
        finally:
            _intern.active().kernel_fns.clear()
        assert campaign.mismatches
        assert campaign.repro_paths
        assert all(path.endswith(".py") for path in campaign.repro_paths)
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["mismatches"] == len(campaign.mismatches)
        assert summary["repro_scripts"] == campaign.repro_paths
        assert any(d.code == "FUZ001" for d in campaign.engine.errors())
        assert any(d.code == "FUZ003" for d in campaign.engine.diagnostics)

    def test_summary_dict_shape(self):
        campaign = run_campaign(FuzzOptions(seed=2, trials=2, **_FAST))
        summary = campaign.summary_dict()
        assert summary["seed"] == 2
        assert summary["trials_requested"] == 2
        assert summary["trials_run"] == 2
        assert summary["failures"] == []


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seed", "5", "--trials", "4",
            "--workloads", "gemm,bicg", "--sizes", "8",
            "--out", str(tmp_path), "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: seed=5 trials=4/4 passed=4" in out
        assert "trials per workload:" in out
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["passed"] == 4

    def test_time_budget_is_not_a_failure(self, capsys):
        code = main([
            "fuzz", "--seed", "9", "--trials", "5000", "--time-budget", "1",
            "--workloads", "gemm", "--sizes", "8",
        ])
        assert code == 0
        assert "FUZ004" in capsys.readouterr().err

    def test_invalid_options_exit_with_message(self):
        with pytest.raises(SystemExit, match="trials"):
            main(["fuzz", "--trials", "0"])
        with pytest.raises(SystemExit, match="nope"):
            main(["fuzz", "--workloads", "nope"])

    def test_trace_export(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main([
            "fuzz", "--seed", "1", "--trials", "2",
            "--workloads", "gemm", "--sizes", "8",
            "--trace", str(trace_path),
        ])
        assert code == 0
        events = json.loads(trace_path.read_text())["traceEvents"]
        assert any(e.get("name") == "fuzz.campaign" for e in events)
        assert any(e.get("name") == "fuzz.trial" for e in events)

    def test_help_documents_unified_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--help"])
        out = capsys.readouterr().out
        for flag in ("--seed", "--trials", "--time-budget", "--jobs", "--stats"):
            assert flag in out
