"""Differential harness tests: detection, attribution, shrinking, repro.

The fuzzer's job is to catch bugs in the simulator or the transformation
pipeline, so these tests *inject* one -- a corrupted ``arange`` in the
compiled kernels' exec namespace that silently drops each grid's last
iteration -- and assert the whole failure path works: the differential
check flags the mismatch, the interpreter-based oracle blames the
compiled simulator, the shrinker minimizes the schedule, and the
emitted repro script exits 0 in a clean process (where the bug is gone).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.affine import compile as _compile
from repro.fuzz import run_trial, shrink_failure, write_repro_script
from repro.fuzz.harness import (
    TrialResult,
    _differential,
    build_workload,
    check_schedule,
    replay,
    workload_factory,
)
from repro.isl import intern as _intern

pytestmark = pytest.mark.fuzz

_EMPTY = {"directives": [], "partitions": {}}


class _BadNp:
    """numpy shim whose arange silently drops the last grid point."""

    def __getattr__(self, name):
        return getattr(np, name)

    def arange(self, lo, hi):
        return np.arange(lo, max(lo, hi - 1))


@pytest.fixture
def corrupted_sim(monkeypatch):
    """Break every vectorized kernel compiled while the fixture is live."""
    _intern.active().kernel_fns.clear()
    monkeypatch.setitem(_compile._GLOBALS, "_np", _BadNp())
    yield
    # Kernels compiled against the bad namespace captured it; drop them.
    _intern.active().kernel_fns.clear()


class TestWorkloadLookup:
    def test_factory_by_name(self):
        function = build_workload("gemm", 8)
        assert function.name == "gemm"

    def test_unknown_name_raises(self):
        from repro.diagnostics import DiagnosticError

        with pytest.raises(ValueError, match="unknown workload") as excinfo:
            workload_factory("nope")
        assert isinstance(excinfo.value, DiagnosticError)
        assert excinfo.value.diagnostic.code == "WLD001"


class TestCleanTrials:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trials_pass_on_healthy_tree(self, seed):
        result = run_trial("gemm", 8, seed)
        assert result.kind == "pass", result.as_dict()
        assert result.ok
        assert "directives" in result.schedule

    def test_trial_is_deterministic(self):
        assert run_trial("bicg", 8, 7).as_dict() == run_trial("bicg", 8, 7).as_dict()

    def test_check_schedule_empty(self):
        assert check_schedule("gemm", 8, 0, _EMPTY)

    def test_result_roundtrips_to_dict(self):
        d = run_trial("gemm", 8, 3).as_dict()
        assert d["workload"] == "gemm" and d["kind"] == "pass"


class TestInjectedBug:
    def test_differential_detects_and_blames_sim(self, corrupted_sim):
        kind, mismatched, oracle, stage, error = _differential("gemm", 8, 0, _EMPTY)
        assert kind == "mismatch"
        assert mismatched == ["A"]  # gemm accumulates into A
        # The tree-walking interpreter agrees with the reference, so the
        # compiled simulator is the suspect.
        assert oracle == "sim"
        assert stage is None and error is None

    def test_run_trial_records_failure(self, corrupted_sim):
        failures = []
        for seed in range(10):
            result = run_trial("gemm", 8, seed)
            if result.kind == "mismatch":
                failures.append(result)
        assert failures, "injected bug never surfaced across 10 trials"
        assert all(r.oracle == "sim" for r in failures)

    def test_shrink_minimizes_schedule(self, corrupted_sim):
        result = next(
            r for s in range(10) if (r := run_trial("gemm", 8, s)).kind == "mismatch"
        )
        minimized = shrink_failure(result)
        assert len(minimized["directives"]) <= len(result.schedule["directives"])
        # The injected bug fires with no schedule at all, so greedy
        # removal should strip everything.
        assert minimized["directives"] == []
        assert minimized["partitions"] == {}

    def test_replay_reproduces_in_process(self, corrupted_sim):
        payload = {"workload": "gemm", "size": 8, "seed": 0, "schedule": _EMPTY}
        assert replay(payload) == 1

    def test_repro_script_passes_in_clean_process(self, corrupted_sim, tmp_path):
        result = TrialResult(
            "gemm", 8, 0, "mismatch",
            schedule=_EMPTY, mismatch_arrays=["A"], oracle="sim",
        )
        path = str(tmp_path / "repro-case.py")
        write_repro_script(result, path)
        assert os.path.exists(path)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src_dir)
        proc = subprocess.run(
            [sys.executable, path], capture_output=True, text=True, env=env
        )
        # The corruption lives only in this process; a clean interpreter
        # sees the differential check pass and exits 0.
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "passes" in proc.stdout

    def test_repro_script_prefers_minimized_schedule(self, tmp_path):
        result = TrialResult(
            "gemm", 8, 0, "mismatch",
            schedule={"directives": [{"kind": "bogus"}], "partitions": {}},
            minimized=_EMPTY,
        )
        path = str(tmp_path / "repro-case.py")
        write_repro_script(result, path)
        with open(path) as handle:
            assert "bogus" not in handle.read()


class TestDataflowTrials:
    @pytest.mark.parametrize("name", ["image-pipeline", "conv-block"])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_trials_pass_on_healthy_tree(self, name, seed):
        result = run_trial(name, 8, seed)
        assert result.kind == "pass", result.as_dict()
        # Dataflow trials mutate one named stage of the design.
        assert result.schedule["stage"] in build_workload(name, 8).stages

    def test_trial_is_deterministic(self):
        assert (
            run_trial("image-pipeline", 8, 9).as_dict()
            == run_trial("image-pipeline", 8, 9).as_dict()
        )

    def test_injected_bug_blames_sim(self, corrupted_sim):
        failures = []
        for seed in range(10):
            result = run_trial("conv-block", 8, seed)
            if result.kind == "mismatch":
                failures.append(result)
        assert failures, "injected bug never surfaced across 10 trials"
        assert all(r.oracle == "sim" for r in failures)

    def test_shrink_preserves_the_stage_key(self, corrupted_sim):
        result = next(
            r for s in range(10)
            if (r := run_trial("conv-block", 8, s)).kind == "mismatch"
        )
        minimized = shrink_failure(result)
        assert minimized["stage"] == result.schedule["stage"]
        assert len(minimized["directives"]) <= len(
            result.schedule["directives"]
        )


class TestReplayVerdicts:
    def test_passing_payload_exits_zero(self, capsys):
        payload = {"workload": "gemm", "size": 8, "seed": 0, "schedule": _EMPTY}
        assert replay(payload) == 0
        assert "passes" in capsys.readouterr().out

    def test_invalid_schedule_reports_crash(self, capsys):
        payload = {
            "workload": "gemm",
            "size": 8,
            "seed": 0,
            "schedule": {"directives": [{"kind": "warp"}], "partitions": {}},
        }
        assert replay(payload) == 1
        assert "crash" in capsys.readouterr().out
