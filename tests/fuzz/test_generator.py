"""Generator contract: legal, deterministic, structurally sound schedules."""

import random

import pytest

from repro.dsl.schedule import (
    After,
    Fuse,
    Interchange,
    Pipeline,
    Reverse,
    Shift,
    Skew,
    Split,
    Tile,
    Unroll,
)
from repro.dsl.serialize import schedule_to_dict
from repro.fuzz import random_schedule
from repro.fuzz.harness import build_workload
from repro.preflight import preflight_schedule

pytestmark = pytest.mark.fuzz

_LOOP_TRANSFORMS = (Interchange, Split, Tile, Skew, Reverse, Shift)


def _generate(workload, size, seed, max_directives=6):
    function = build_workload(workload, size)
    random_schedule(function, random.Random(seed), max_directives=max_directives)
    return function


class TestDeterminism:
    @pytest.mark.parametrize("workload", ["gemm", "bicg", "jacobi-1d"])
    def test_same_seed_same_schedule(self, workload):
        a = schedule_to_dict(_generate(workload, 8, seed=42))
        b = schedule_to_dict(_generate(workload, 8, seed=42))
        assert a == b

    def test_different_seeds_explore(self):
        schedules = {
            str(schedule_to_dict(_generate("gemm", 8, seed=s))) for s in range(12)
        }
        assert len(schedules) > 1


class TestLegality:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("workload", ["gemm", "bicg", "seidel"])
    def test_generated_schedule_is_preflight_clean(self, workload, seed):
        function = _generate(workload, 8, seed)
        engine = preflight_schedule(function)
        assert not engine.errors(), [d.render() for d in engine.errors()]

    @pytest.mark.parametrize("seed", range(8))
    def test_respects_max_directives(self, seed):
        function = _generate("gemm", 8, seed, max_directives=3)
        assert len(function.schedule) <= 3


class TestStructuralSoundness:
    """The two generation rules that keep the differential oracle sound."""

    def _sweep(self, workload, seeds=range(30)):
        for seed in seeds:
            yield _generate(workload, 8, seed).schedule

    def test_fusions_are_structural(self):
        found = 0
        for schedule in self._sweep("bicg"):
            for directive in schedule:
                if isinstance(directive, (After, Fuse)):
                    found += 1
                    assert directive.structural
        assert found, "sweep never generated a fusion; widen the seed range"

    def test_fused_statements_never_loop_transformed(self):
        for schedule in self._sweep("bicg"):
            fused = set()
            transformed = set()
            for directive in schedule:
                if isinstance(directive, (After, Fuse)):
                    fused.update({directive.compute_name, directive.other})
                elif isinstance(directive, _LOOP_TRANSFORMS):
                    transformed.add(directive.compute_name)
            assert not (fused & transformed)


class TestCoverage:
    def test_sweep_covers_directive_kinds(self):
        kinds = set()
        for seed in range(60):
            for directive in _generate("bicg", 8, seed).schedule:
                kinds.add(type(directive))
        # Every proposal kind should eventually materialize on a
        # multi-statement workload with 2-deep loops.
        assert {Interchange, Split, Tile, Reverse, Shift, Pipeline, Unroll} <= kinds
        assert kinds & {After, Fuse}

    def test_partitions_eventually_applied(self):
        assert any(
            any(
                p.partition_scheme is not None
                for p in _generate("gemm", 8, seed).placeholders()
            )
            for seed in range(20)
        )

    def test_all_partition_kinds_drawn(self):
        """The pool covers every kind ``Placeholder.partition`` accepts."""
        kinds = set()
        for seed in range(80):
            for p in _generate("gemm", 8, seed).placeholders():
                if p.partition_scheme is not None:
                    kinds.add(p.partition_scheme.kind)
        assert kinds == {"cyclic", "block", "complete"}

    def test_leveled_after_drawn(self):
        """``After`` at a shared loop level (not just outermost) is reachable."""
        levels = set()
        for seed in range(80):
            for directive in _generate("bicg", 8, seed).schedule:
                if isinstance(directive, After):
                    levels.add(directive.level)
        assert None in levels
        assert levels - {None}, "sweep never drew a leveled After"
