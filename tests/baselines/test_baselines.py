"""Unit tests for the comparator-framework reimplementations."""

import numpy as np
import pytest

from repro.affine import interpret
from repro.baselines import manual, pluto, polsca, scalehls
from repro.pipeline import estimate, lower_to_affine
from repro.workloads import polybench, stencils


def check_semantics(function, seed=0):
    arrays = function.allocate_arrays(seed=seed)
    ref = {k: v.copy() for k, v in arrays.items()}
    function.reference_execute(ref)
    got = {k: v.copy() for k, v in arrays.items()}
    interpret(lower_to_affine(function), got)
    for name in arrays:
        np.testing.assert_allclose(got[name], ref[name], rtol=1e-3, atol=1e-5,
                                   err_msg=name)


class TestPluto:
    def test_no_hardware_pragmas(self):
        f = pluto.optimize(polybench.gemm(64))
        kinds = {type(d).__name__ for d in f.schedule}
        assert "Pipeline" not in kinds and "Unroll" not in kinds

    def test_locality_order_moves_reduction_inner(self):
        f = polybench.gemm(8)
        order = pluto.locality_order(f.get_compute("s"))
        assert order[-1] == "k"

    def test_performance_matches_baseline(self):
        base = estimate(polybench.gemm(64))
        tiled = estimate(pluto.optimize(polybench.gemm(64)))
        ratio = base.total_cycles / tiled.total_cycles
        assert 0.5 < ratio < 2.0

    def test_semantics_preserved(self):
        check_semantics(pluto.optimize(polybench.gemm(64)))


class TestPolsca:
    def test_pipelines_reduction_loop(self):
        f = polsca.optimize(polybench.gemm(64))
        report = estimate(f)
        assert report.worst_ii() is not None
        assert report.worst_ii() > 20  # recurrence-bound pipeline

    def test_no_partitioning(self):
        f = polsca.optimize(polybench.gemm(4096))
        assert all(p.partition_scheme is None for p in f.placeholders())

    def test_small_speedup_small_resources(self):
        base = estimate(polybench.gemm(256, baseline=True))
        f = polsca.optimize(polybench.gemm(256, baseline=True))
        report = estimate(f)
        assert 1.0 < base.total_cycles / report.total_cycles < 30
        assert report.resources.dsp < 30

    def test_semantics_preserved(self):
        check_semantics(polsca.optimize(polybench.gemm(32)))
        check_semantics(polsca.optimize(polybench.bicg(32, baseline=True)))


class TestScaleHls:
    def test_bicg_keeps_single_nest(self):
        f = polybench.bicg(64, baseline=True)
        result = scalehls.optimize(f)
        assert result.orders["Sq"] == result.orders["Ss"]

    def test_bicg_interchanges_for_first_statement(self):
        """Paper: ScaleHLS moves j outward to relieve q's dependence."""
        f = polybench.bicg(64, baseline=True)
        result = scalehls.optimize(f)
        assert result.orders["Sq"] == ["j", "i"]

    def test_bicg_left_with_large_ii(self):
        f = polybench.bicg(128, baseline=True)
        result = scalehls.optimize(f)
        assert result.report.worst_ii() > 10

    def test_gemm_competitive(self):
        base = estimate(polybench.gemm(128, baseline=True))
        f = polybench.gemm(128, baseline=True)
        result = scalehls.optimize(f)
        assert base.total_cycles / result.report.total_cycles > 50

    def test_no_skewing_capability(self):
        from repro.dsl.schedule import Skew

        f = stencils.seidel(32, steps=4)
        result = scalehls.optimize(f)
        assert not any(isinstance(d, Skew) for d in f.schedule)

    def test_semantics_preserved(self):
        f = polybench.bicg(16, baseline=True)
        scalehls.optimize(f)
        check_semantics(f)

    def test_respects_budget(self):
        f = polybench.gemm(128, baseline=True)
        result = scalehls.optimize(f, resource_fraction=0.25)
        from repro.hls.device import DEFAULT_DEVICE

        assert result.report.resources.dsp <= DEFAULT_DEVICE.scaled(0.25).dsp

    def test_dataflow_mode_allows_overflow(self):
        from repro.workloads import dnn

        f = dnn.vgg16(size=4, channel_scale=0.25)
        result = scalehls.optimize(f, dataflow=True)
        assert not result.report.feasible()


class TestManual:
    def test_requires_bicg(self):
        with pytest.raises(ValueError):
            manual.optimize_bicg(polybench.gemm(8))

    def test_large_speedup(self):
        base = estimate(polybench.bicg(256, baseline=True))
        f = manual.optimize_bicg(polybench.bicg(256, baseline=True))
        report = estimate(f)
        assert base.total_cycles / report.total_cycles > 30

    def test_worse_than_dse(self):
        base = estimate(polybench.bicg(256, baseline=True))
        f_manual = manual.optimize_bicg(polybench.bicg(256, baseline=True))
        manual_speedup = base.total_cycles / estimate(f_manual).total_cycles
        f_dse = polybench.bicg(256)
        dse = f_dse.auto_DSE()
        dse_speedup = base.total_cycles / dse.report.total_cycles
        assert dse_speedup > manual_speedup

    def test_semantics_preserved(self):
        check_semantics(manual.optimize_bicg(polybench.bicg(16, baseline=True)))
