"""JobSpec validation, cache keys, fingerprints, and in-worker execution."""

import pytest

from repro.serve.jobs import (
    JobSpec,
    build_fault_plan,
    cache_key,
    design_fingerprint,
    execute_job,
)

pytestmark = pytest.mark.serve


class TestValidation:
    def test_minimal_dse_request(self):
        spec = JobSpec.from_request({"kind": "dse", "workload": "gemm", "size": 64})
        assert spec.kind == "dse"
        assert spec.cacheable
        assert spec.label == "dse:gemm-64"

    @pytest.mark.parametrize(
        "body",
        [
            "not an object",
            {"kind": "compile", "workload": "gemm"},
            {"kind": "dse"},  # missing workload
            {"kind": "dse", "workload": "nope"},
            {"kind": "dse", "workload": "gemm", "size": 0},
            {"kind": "dse", "workload": "gemm", "size": "big"},
            {"kind": "dse", "workload": "gemm", "mystery": 1},
            {"kind": "dse", "workload": "gemm", "options": {"bogus": 1}},
            {"kind": "verify", "workload": "gemm", "options": {"jobs": 2}},
            {"kind": "verify", "workload": "gemm", "fault": {"seed": 1}},
            {"kind": "dse", "workload": "gemm", "fault": {"surprise": 1}},
            {"kind": "dse", "workload": "gemm", "fault": {"rate": 0.5}},
            {"kind": "dse", "workload": "gemm", "session": 7},
        ],
    )
    def test_rejects_bad_requests(self, body):
        with pytest.raises(ValueError):
            JobSpec.from_request(body)

    def test_fuzz_needs_no_workload(self):
        spec = JobSpec.from_request({"kind": "fuzz", "options": {"trials": 2}})
        assert spec.workload is None
        assert not spec.cacheable
        assert spec.label == "fuzz:suite"

    def test_as_request_is_canonical(self):
        spec = JobSpec.from_request(
            {
                "kind": "dse",
                "workload": "gemm",
                "size": 64,
                "options": {"time_budget_s": 5, "clock_ns": 5.0},
                "force": True,  # transport-only; not part of the content
            }
        )
        body = spec.as_request()
        assert "force" not in body
        assert list(body["options"]) == sorted(body["options"])


class TestCacheKey:
    def _spec(self, **over):
        body = {"kind": "dse", "workload": "gemm", "size": 64}
        body.update(over)
        return JobSpec.from_request(body)

    def test_option_order_does_not_matter(self):
        a = self._spec(options={"clock_ns": 5.0, "time_budget_s": 9})
        b = self._spec(options={"time_budget_s": 9, "clock_ns": 5.0})
        assert cache_key(a) == cache_key(b)

    def test_content_changes_the_key(self):
        base = cache_key(self._spec())
        assert cache_key(self._spec(size=65)) != base
        assert cache_key(self._spec(options={"clock_ns": 5.0})) != base
        assert (
            cache_key(
                self._spec(fault={"faults": [{"kind": "crash", "candidate": 2}]})
            )
            != base
        ), "a faulted request must never share a clean request's store key"

    def test_session_is_not_part_of_the_key(self):
        assert cache_key(self._spec(session="s1")) == cache_key(self._spec())

    def test_engine_version_is_baked_in(self, monkeypatch):
        base = cache_key(self._spec())
        import repro.dse.checkpoint as checkpoint

        monkeypatch.setattr(checkpoint, "ENGINE_VERSION", "incompatible")
        assert cache_key(self._spec()) != base


class TestDesignFingerprint:
    def test_tuple_list_normalization(self):
        assert design_fingerprint(
            {"tiles": [(2, 4), (1, 1)], "cycles": 9}
        ) == design_fingerprint({"tiles": [[2, 4], [1, 1]], "cycles": 9})

    def test_key_order_irrelevant_but_values_matter(self):
        assert design_fingerprint({"a": 1, "b": 2}) == design_fingerprint(
            {"b": 2, "a": 1}
        )
        assert design_fingerprint({"a": 1}) != design_fingerprint({"a": 2})


class TestFaultPlans:
    def test_explicit_schedule(self):
        plan = build_fault_plan(
            {"faults": [{"kind": "transient", "candidate": 3, "count": 2}]}
        )
        assert plan.faults[0].kind == "transient"
        assert plan.faults[0].count == 2

    def test_seeded_plan_is_deterministic(self):
        spec = {"seed": 11, "candidates": 8, "rate": 0.5}
        assert build_fault_plan(spec).faults == build_fault_plan(spec).faults

    @pytest.mark.parametrize(
        "spec",
        [
            {"faults": "nope"},
            {"faults": [{"kind": "crash"}]},
            {"rate": 0.5},
            {"seed": 1, "kinds": ["meteor"]},
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            build_fault_plan(spec)

    def test_empty_spec_is_no_plan(self):
        assert build_fault_plan(None) is None
        assert build_fault_plan({}) is None


class TestExecution:
    def test_verify_job_payload(self):
        spec = JobSpec.from_request({"kind": "verify", "workload": "gemm", "size": 32})
        payload = execute_job(spec)
        assert payload["kind"] == "verify"
        assert payload["design"]["ok"] is True
        assert payload["timing"]["wall_s"] >= 0

    def test_trace_job_counts_spans(self):
        spec = JobSpec.from_request({"kind": "trace", "workload": "gemm", "size": 32})
        payload = execute_job(spec)
        assert payload["design"]["spans"] > 0
        assert payload["design"]["spans_by_category"]

    def test_dse_job_splits_design_from_search(self):
        events = []
        spec = JobSpec.from_request({"kind": "dse", "workload": "gemm", "size": 32})
        payload = execute_job(spec, emit=events.append)
        assert payload["design"]["total_cycles"] > 0
        assert payload["design"]["schedule"]
        assert payload["search"]["evaluations"] > 0
        assert "evaluations" not in payload["design"]
        assert [e["stage"] for e in events] == ["build", "search", "done"]
