"""The acceptance bar: serve mode is bit-identical to CLI batch mode.

The batch side runs ``auto_dse`` in-process exactly like ``repro dse``
(global context, no server); the serve side pushes the same requests
through HTTP, worker subprocesses, fresh per-job session contexts, the
content-addressed store, and -- in the hard cases -- an injected crash
with retry/resume or a full daemon drain/restart cycle.  Both sides are
projected through :func:`repro.serve.jobs.dse_design_payload` and hashed
with :func:`repro.serve.jobs.design_fingerprint`, so "bit-identical"
means the full deterministic design slice: cycles, resources, power,
tile vectors, and the installed schedule's fingerprints.
"""

import pytest

from repro.dse import auto_dse
from repro.dse.options import DseOptions
from repro.dse.parallel import build_workload
from repro.serve.jobs import (
    dataflow_design_payload,
    design_fingerprint,
    dse_design_payload,
)

pytestmark = pytest.mark.serve

#: Three workload families (dense linear algebra, two-statement
#: reduction, fused matrix chains) at a size small enough to keep the
#: suite quick but large enough that the DSE ladder actually explores.
WORKLOADS = (("gemm", 48), ("bicg", 48), ("2mm", 48))


@pytest.fixture(scope="module")
def batch_designs():
    """Sequential CLI-equivalent results, computed once per module."""
    designs = {}
    for name, size in WORKLOADS:
        result = auto_dse(build_workload(name, size))
        designs[(name, size)] = design_fingerprint(
            dse_design_payload(result, name, size)
        )
    return designs


def test_concurrent_sessions_match_batch_then_warm_store(
    serve_factory, batch_designs
):
    server, client = serve_factory(workers=2)
    sessions = [client.open_session(), client.open_session()]

    # Submit every workload up front, alternating sessions, so jobs run
    # concurrently in sibling worker processes.
    submitted = []
    for index, (name, size) in enumerate(WORKLOADS):
        status, payload = client.submit(
            "dse", name, size, session=sessions[index % 2]
        )
        assert status == 202
        submitted.append((name, size, payload["job"]))

    for name, size, job_id in submitted:
        record = client.wait_done(job_id, timeout_s=120)
        assert record["status"] == "done", record
        served = design_fingerprint(record["result"]["design"])
        assert served == batch_designs[(name, size)], (name, size)

    # Every repeat request is a warm store hit with the same design.
    for name, size in WORKLOADS:
        status, payload = client.submit("dse", name, size)
        assert status == 200, (name, size)
        assert payload["cached"] is True
        assert (
            design_fingerprint(payload["result"]["design"])
            == batch_designs[(name, size)]
        )
    stats = client.status()["store"]
    assert stats["hits"] >= len(WORKLOADS)


def test_crashing_job_converges_to_the_batch_design(
    serve_factory, batch_designs
):
    """Injected crash -> worker dies -> retry disarmed + journal resume."""
    server, client = serve_factory(subdir="chaos")
    name, size = WORKLOADS[0]
    status, payload = client.submit(
        "dse", name, size,
        fault={"faults": [{"kind": "crash", "candidate": 2}]},
    )
    assert status == 202
    record = client.wait_done(payload["job"], timeout_s=120)
    assert record["status"] == "done", record
    assert record["attempts"] >= 2, "the injected crash must kill attempt 1"
    events = client.events(payload["job"])["events"]
    assert any(e.get("code") == "SRV004" for e in events)
    assert (
        design_fingerprint(record["result"]["design"])
        == batch_designs[(name, size)]
    )


def test_drain_restart_resume_matches_batch(serve_factory, batch_designs):
    """SIGTERM-equivalent drain mid-job, restart, recovered job bit-matches."""
    name, size = WORKLOADS[1]
    first, client = serve_factory(subdir="restart", drain_grace_s=0.05)
    status, payload = client.submit("dse", name, size)
    assert status == 202
    job_id = payload["job"]
    first.shutdown()  # the job cannot finish inside a 50ms grace window

    job = first.executor.get(job_id)
    assert job.status == "interrupted"
    assert job.code == "SRV006"

    second, client2 = serve_factory(subdir="restart")
    assert second.recovered == 1
    record = client2.wait_done(job_id, timeout_s=120)
    assert record["status"] == "done", record
    assert (
        design_fingerprint(record["result"]["design"])
        == batch_designs[(name, size)]
    )
    events = client2.events(job_id)["events"]
    assert any(e.get("code") == "SRV007" for e in events)

    # And the finished result is now a warm hit for everyone else.
    status, payload = client2.submit("dse", name, size)
    assert status == 200
    assert (
        design_fingerprint(payload["result"]["design"])
        == batch_designs[(name, size)]
    )


def test_pareto_dse_jobs_match_batch_frontier(serve_factory):
    """Frontier mode through HTTP: payload carries the exact batch frontier."""
    name, size = "gemm", 48
    options = {"objective": "pareto"}
    from repro.dse.options import DseOptions

    batch = auto_dse(
        build_workload(name, size), options=DseOptions(objective="pareto")
    )
    batch_payload = dse_design_payload(batch, name, size)
    assert batch_payload["frontier"], "batch frontier must be non-empty"

    _server, client = serve_factory(subdir="pareto")
    record = client.run(
        kind="dse", workload=name, size=size, options=options, timeout_s=120
    )
    assert record["status"] == "done", record
    design = record["result"]["design"]
    assert design["objective"] == "pareto:latency,dsp"
    assert design["frontier"] == batch_payload["frontier"]
    assert design_fingerprint(design) == design_fingerprint(batch_payload)

    # Warm store hit returns the identical frontier; a different
    # objective is a different cache key and misses.
    status, payload = client.submit("dse", name, size, options=options)
    assert status == 200
    assert payload["result"]["design"]["frontier"] == batch_payload["frontier"]
    status, _payload = client.submit(
        "dse", name, size, options={"objective": "single"}
    )
    assert status == 202


#: Dataflow designs run their joint balancing DSE under a tight budget
#: so the balanced-vs-naive gap is visible in the served payload too.
DATAFLOW_WORKLOADS = (("image-pipeline", 16), ("conv-block", 8))
DATAFLOW_OPTIONS = {"resource_fraction": 0.25}


@pytest.fixture(scope="module")
def batch_dataflow_designs():
    """Sequential CLI-equivalent dataflow results, once per module."""
    designs = {}
    for name, size in DATAFLOW_WORKLOADS:
        result = build_workload(name, size).auto_DSE(
            options=DseOptions(**DATAFLOW_OPTIONS)
        )
        designs[(name, size)] = design_fingerprint(
            dataflow_design_payload(result, name, size)
        )
    return designs


def test_dataflow_dse_jobs_match_batch(serve_factory, batch_dataflow_designs):
    """Multi-kernel pipeline DSE through HTTP bit-matches in-process."""
    _server, client = serve_factory(subdir="dataflow")
    for name, size in DATAFLOW_WORKLOADS:
        record = client.run(
            kind="dse", workload=name, size=size,
            options=DATAFLOW_OPTIONS, timeout_s=180,
        )
        assert record["status"] == "done", record
        design = record["result"]["design"]
        assert design["balanced_speedup"] >= 1.0
        assert design["frontier"], (name, size)
        assert (
            design_fingerprint(design)
            == batch_dataflow_designs[(name, size)]
        ), (name, size)

    # Repeats are warm store hits carrying the identical design.
    name, size = DATAFLOW_WORKLOADS[0]
    status, payload = client.submit(
        "dse", name, size, options=DATAFLOW_OPTIONS
    )
    assert status == 200
    assert payload["cached"] is True
    assert (
        design_fingerprint(payload["result"]["design"])
        == batch_dataflow_designs[(name, size)]
    )


def test_device_option_is_part_of_the_cache_key(serve_factory):
    """Same workload, different --device: distinct store entries."""
    _server, client = serve_factory(subdir="devices")
    name, size = "conv-block", 8
    zynq = {**DATAFLOW_OPTIONS, "device": "xc7z020"}
    record = client.run(
        kind="dse", workload=name, size=size, options=zynq, timeout_s=120
    )
    assert record["status"] == "done", record

    # The exact same request is a warm hit ...
    status, _payload = client.submit("dse", name, size, options=zynq)
    assert status == 200
    # ... but a different device name misses and runs fresh.
    ultrascale = {**DATAFLOW_OPTIONS, "device": "xczu9eg"}
    status, payload = client.submit("dse", name, size, options=ultrascale)
    assert status == 202
    record = client.wait_done(payload["job"], timeout_s=120)
    assert record["status"] == "done", record

    # Unknown device names are an SRV001 reject before any work runs.
    status, payload = client.submit(
        "dse", name, size, options={"device": "bogus-part"}
    )
    assert status == 400
    assert payload["code"] == "SRV001"
    assert "bogus-part" in payload["error"]


def test_verify_jobs_match_in_process_verification(serve_factory):
    name, size = "gemm", 48
    engine = build_workload(name, size).verify()
    batch = {
        "ok": not engine.has_errors,
        "codes": sorted(d.code for d in engine.diagnostics),
    }
    _server, client = serve_factory(subdir="verify")
    record = client.run(kind="verify", workload=name, size=size, timeout_s=120)
    design = record["result"]["design"]
    assert design["ok"] == batch["ok"]
    assert sorted(d["code"] for d in design["diagnostics"]) == batch["codes"]
