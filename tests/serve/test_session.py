"""SessionContext contract: install, restore, isolate, and never change results."""

import pytest

from repro import trace as _trace
from repro.dse import auto_dse
from repro.dse.parallel import build_workload
from repro.isl import intern as _intern
from repro.isl import memo as _memo
from repro.serve import SessionContext
from repro.serve.jobs import design_fingerprint, dse_design_payload

pytestmark = pytest.mark.serve


class TestActivation:
    def test_installs_private_tables_and_restores(self):
        base_memo = _memo.active()
        base_intern = _intern.active()
        base_tracer = _trace.active()
        session = SessionContext()
        with session.activate():
            assert _memo.active() is session.memo
            assert _intern.active() is session.intern
            assert _memo.active() is not base_memo
            assert _intern.active() is not base_intern
        assert _memo.active() is base_memo
        assert _intern.active() is base_intern
        assert _trace.active() is base_tracer

    def test_nested_sessions_restore_in_order(self):
        base = _memo.active()
        outer, inner = SessionContext(), SessionContext()
        with outer.activate():
            with inner.activate():
                assert _memo.active() is inner.memo
            assert _memo.active() is outer.memo
        assert _memo.active() is base

    def test_exception_still_restores(self):
        base_memo = _memo.active()
        base_intern = _intern.active()
        with pytest.raises(RuntimeError):
            with SessionContext().activate():
                raise RuntimeError("boom")
        assert _memo.active() is base_memo
        assert _intern.active() is base_intern

    def test_session_tracer_installed(self):
        tracer = _trace.Tracer()
        session = SessionContext(tracer=tracer)
        with session.activate():
            assert _trace.active() is tracer
        assert _trace.active() is not tracer

    def test_jobs_run_counts_activations(self):
        session = SessionContext()
        for _ in range(3):
            with session.activate():
                pass
        assert session.jobs_run == 3
        assert session.stats()["jobs_run"] == 3


class TestIsolation:
    def test_compile_populates_session_not_global_tables(self):
        base = _memo.active()
        before = base.stats_snapshot()
        session = SessionContext()
        with session.activate():
            function = build_workload("gemm", 32)
            function.lower()
            function.estimate()
        # Everything the compile memoized landed in the session's tables.
        session_totals = sum(
            hits + misses
            for hits, misses in session.memo.stats_snapshot().values()
        )
        assert session_totals > 0
        assert base.stats_snapshot() == before
        assert sum(session.intern.stats().values()) > 0

    def test_two_sessions_do_not_share_tables(self):
        a, b = SessionContext(), SessionContext()
        with a.activate():
            build_workload("gemm", 32).lower()
        with b.activate():
            assert sum(
                h + m for h, m in _memo.active().stats_snapshot().values()
            ) == 0


class TestBitIdentity:
    def test_fresh_session_dse_matches_global_context(self):
        """Fresh tables change speed, never results (the serve promise)."""
        name, size = "gemm", 48
        batch = auto_dse(build_workload(name, size))
        with SessionContext().activate():
            served = auto_dse(build_workload(name, size))
        assert design_fingerprint(
            dse_design_payload(batch, name, size)
        ) == design_fingerprint(dse_design_payload(served, name, size))
