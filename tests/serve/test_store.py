"""ResultStore contract: crash-safe persistence, corrupt-skip, recovery."""

import json
import os

import pytest

from repro.serve.jobs import JobSpec, cache_key
from repro.serve.store import ResultStore

pytestmark = pytest.mark.serve


def _spec(workload="gemm", size=64, **over):
    body = {"kind": "dse", "workload": workload, "size": size}
    body.update(over)
    return JobSpec.from_request(body)


def _payload(cycles=100):
    return {
        "design": {"workload": "gemm", "total_cycles": cycles},
        "search": {"evaluations": 7},
        "timing": {"wall_s": 0.5},
    }


class TestResults:
    def test_record_then_lookup(self, tmp_path):
        store = ResultStore(str(tmp_path))
        spec = _spec()
        key = cache_key(spec)
        assert store.lookup(key) is None
        entry = store.record(key, spec, _payload())
        found = store.lookup(key)
        assert found is entry
        assert found["design"]["total_cycles"] == 100
        assert found["fingerprint"]
        assert store.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "corrupt_skipped": 0,
        }

    def test_survives_reopen(self, tmp_path):
        spec = _spec()
        key = cache_key(spec)
        ResultStore(str(tmp_path)).record(key, spec, _payload())
        reopened = ResultStore(str(tmp_path))
        assert reopened.lookup(key)["design"]["total_cycles"] == 100

    def test_last_writer_wins_on_duplicate_key(self, tmp_path):
        spec = _spec()
        key = cache_key(spec)
        store = ResultStore(str(tmp_path))
        store.record(key, spec, _payload(cycles=100))
        store.record(key, spec, _payload(cycles=200))
        assert store.lookup(key)["design"]["total_cycles"] == 200
        reopened = ResultStore(str(tmp_path))
        assert reopened.lookup(key)["design"]["total_cycles"] == 200

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        """The SRV005 discipline: a torn append never poisons the store."""
        spec = _spec()
        key = cache_key(spec)
        store = ResultStore(str(tmp_path))
        store.record(key, spec, _payload())
        with open(store.store_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn-entry", "design"\n')  # torn mid-append
            handle.write("?? not json at all ??\n")
            handle.write('"a json string, not an object"\n')
            handle.write('{"no_key_field": true}\n')  # missing required fields
        reopened = ResultStore(str(tmp_path))
        assert reopened.lookup(key)["design"]["total_cycles"] == 100
        assert reopened.stats()["corrupt_skipped"] == 4
        assert reopened.stats()["entries"] == 1

    def test_compact_rewrites_one_line_per_live_key(self, tmp_path):
        spec = _spec()
        key = cache_key(spec)
        store = ResultStore(str(tmp_path))
        for cycles in (1, 2, 3):
            store.record(key, spec, _payload(cycles=cycles))
        assert store.compact() == 1
        with open(store.store_path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["design"]["total_cycles"] == 3
        assert ResultStore(str(tmp_path)).lookup(key)["design"][
            "total_cycles"
        ] == 3

    def test_journal_paths_are_per_key(self, tmp_path):
        store = ResultStore(str(tmp_path))
        a = store.journal_path_for(cache_key(_spec(size=8)))
        b = store.journal_path_for(cache_key(_spec(size=16)))
        assert a != b
        assert os.path.dirname(a) == store.journal_dir


class TestLedger:
    def test_recover_returns_accepted_without_done(self, tmp_path):
        store = ResultStore(str(tmp_path))
        done_spec, lost_spec = _spec(size=8), _spec(size=16)
        store.job_accepted("job-1", done_spec, cache_key(done_spec))
        store.job_accepted("job-2", lost_spec, cache_key(lost_spec))
        store.job_done("job-1", "done")
        recovered = ResultStore(str(tmp_path)).recover()
        assert [(job_id, spec.size) for job_id, spec, _key in recovered] == [
            ("job-2", 16)
        ]
        assert recovered[0][2] == cache_key(lost_spec)

    def test_recover_drops_specs_that_no_longer_validate(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.job_accepted("job-1", _spec(), cache_key(_spec()))
        with open(store.jobs_path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "event": "accepted",
                        "job_id": "job-stale",
                        "key": None,
                        "request": {"kind": "dse", "workload": "removed-wl"},
                    }
                )
                + "\n"
            )
        reopened = ResultStore(str(tmp_path))
        assert [job_id for job_id, _s, _k in reopened.recover()] == ["job-1"]
        assert reopened.stats()["corrupt_skipped"] == 1

    def test_interrupted_jobs_stay_recoverable(self, tmp_path):
        """A drain writes no done-line, so a restart sees the job again."""
        store = ResultStore(str(tmp_path))
        spec = _spec()
        store.job_accepted("job-9", spec, cache_key(spec))
        # ... server dies here: no job_done ...
        assert [j for j, _s, _k in ResultStore(str(tmp_path)).recover()] == [
            "job-9"
        ]
        # The restarted server finishes it and closes the ledger.
        store2 = ResultStore(str(tmp_path))
        store2.job_done("job-9", "done")
        assert ResultStore(str(tmp_path)).recover() == []
