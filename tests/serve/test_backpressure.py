"""Backpressure contract: client backoff and the server's Retry-After.

Client side (:meth:`ServeClient.run`): a 429 whose advertised wait
would blow the caller's deadline fails *now* instead of sleeping into a
guaranteed timeout; shorter waits sleep the advertised time stretched
by bounded jitter (never shrunk, never past the deadline) so a herd of
rejected clients doesn't re-stampede the queue in lockstep.

Server side (:class:`JobExecutor`): the admission check and the
Retry-After hint count only *genuinely pending* jobs -- a job that
reached a terminal status while still listed as pending is pruned --
and the hint extrapolates from recently observed service times once
any job has completed.
"""

import random
import time

import pytest

from repro.serve.client import BACKOFF_JITTER_FRACTION, ServeClient, ServerError
from repro.serve.executor import JobExecutor, QueueFull
from repro.serve.jobs import JobSpec
from repro.serve.store import ResultStore

pytestmark = pytest.mark.serve


def _busy_payload():
    return {"code": "SRV002", "error": "job queue full", "retry_after_s": 5.0}


class _ScriptedClient(ServeClient):
    """A ServeClient whose submit() returns canned responses."""

    def __init__(self, responses, rng=None):
        super().__init__("http://127.0.0.1:1", timeout_s=1.0, rng=rng)
        self._responses = list(responses)
        self.submissions = 0

    def submit(self, **kwargs):
        self.submissions += 1
        return self._responses.pop(0)


class _FixedRng(random.Random):
    def __init__(self, value):
        super().__init__(0)
        self._value = value

    def random(self):
        return self._value


class TestClientBackoff:
    def test_retry_after_beyond_deadline_raises_immediately(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        client = _ScriptedClient([(429, _busy_payload())])
        with pytest.raises(ServerError) as excinfo:
            client.run(timeout_s=2.0, kind="verify", workload="gemm", size=32)
        assert excinfo.value.code == "SRV002"
        assert sleeps == [], "must fail fast, not sleep into a timeout"
        assert client.submissions == 1

    def test_sleep_is_advertised_wait_stretched_by_jitter(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        done = (200, {"result": {"ok": True}, "fingerprint": "fp"})
        client = _ScriptedClient(
            [(429, _busy_payload()), done], rng=_FixedRng(0.5)
        )
        record = client.run(
            timeout_s=60.0, kind="verify", workload="gemm", size=32
        )
        assert record["status"] == "done"
        assert sleeps == [5.0 * (1.0 + 0.5 * BACKOFF_JITTER_FRACTION)]

    def test_jitter_never_shrinks_the_advertised_wait(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        done = (200, {"result": {"ok": True}, "fingerprint": "fp"})
        client = _ScriptedClient(
            [(429, _busy_payload()), done], rng=_FixedRng(0.0)
        )
        client.run(timeout_s=60.0, kind="verify", workload="gemm", size=32)
        assert sleeps == [5.0]

    def test_sleep_is_clamped_to_the_remaining_deadline(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        done = (200, {"result": {"ok": True}, "fingerprint": "fp"})
        client = _ScriptedClient(
            [(429, _busy_payload()), done], rng=_FixedRng(1.0)
        )
        # Deadline leaves 6s; the stretched wait (5 * 1.25 = 6.25s)
        # must be clamped to what remains.
        client.run(timeout_s=6.0, kind="verify", workload="gemm", size=32)
        assert len(sleeps) == 1
        assert sleeps[0] <= 6.0
        assert sleeps[0] >= 5.0


def _spec(size=64):
    return JobSpec.from_request(
        {"kind": "verify", "workload": "gemm", "size": size}
    )


@pytest.fixture
def frozen_executor(tmp_path):
    executor = JobExecutor(
        ResultStore(str(tmp_path)), workers=1, queue_limit=2
    )
    # Freeze the scheduler so admitted jobs stay pending.
    executor._start_ready_locked = lambda: None
    yield executor
    executor.close()


class TestExecutorRetryAfter:
    def test_queue_full_with_no_history_hints_at_least_one_second(
        self, frozen_executor
    ):
        frozen_executor.submit(_spec(1))
        frozen_executor.submit(_spec(2))
        with pytest.raises(QueueFull) as excinfo:
            frozen_executor.submit(_spec(3))
        assert excinfo.value.retry_after_s >= 1.0

    def test_terminal_jobs_in_pending_are_pruned_from_admission(
        self, frozen_executor
    ):
        frozen_executor.submit(_spec(1))
        stale = frozen_executor.submit(_spec(2))
        # Simulate a job finalized out-of-band while still queued: it
        # must stop counting against the limit and the Retry-After.
        with frozen_executor._lock:
            stale.status = "done"
        admitted = frozen_executor.submit(_spec(3))
        assert admitted.status == "queued"
        with frozen_executor._lock:
            assert stale not in frozen_executor._pending
            assert len(frozen_executor._pending) == 2

    def test_hint_scales_with_observed_service_times(self, frozen_executor):
        frozen_executor._service_times.extend([2.0, 4.0, 6.0])
        frozen_executor.submit(_spec(1))
        frozen_executor.submit(_spec(2))
        with pytest.raises(QueueFull) as excinfo:
            frozen_executor.submit(_spec(3))
        # median 4s * backlog 2 / 1 worker = 8s.
        assert excinfo.value.retry_after_s == pytest.approx(8.0)

    def test_hint_is_clamped_to_a_sane_range(self, frozen_executor):
        frozen_executor._service_times.extend([100.0, 100.0, 100.0])
        frozen_executor.submit(_spec(1))
        frozen_executor.submit(_spec(2))
        with pytest.raises(QueueFull) as excinfo:
            frozen_executor.submit(_spec(3))
        assert excinfo.value.retry_after_s == 30.0

        frozen_executor._service_times.clear()
        frozen_executor._service_times.extend([0.001, 0.001, 0.001])
        with pytest.raises(QueueFull) as excinfo:
            frozen_executor.submit(_spec(4))
        assert excinfo.value.retry_after_s == 1.0

    def test_finalize_records_service_time(self, tmp_path):
        executor = JobExecutor(
            ResultStore(str(tmp_path)), workers=1, queue_limit=2
        )
        try:
            job = executor.submit(_spec(32))
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if executor.wait(job.id, timeout_s=1.0).status == "done":
                    break
            assert job.status == "done"
            assert len(executor._service_times) == 1
            assert executor._service_times[0] > 0.0
        finally:
            executor.close()
