"""Shared fixtures for the compile-server suite.

``serve_factory`` boots an in-process :class:`~repro.serve.ReproServer`
on an ephemeral port with a per-test state directory and hands back the
server plus a :class:`~repro.serve.ServeClient` bound to it.  Tests that
exercise crash/restart semantics call the factory twice with the same
``subdir`` to simulate a daemon restart over a surviving store.
"""

import threading

import pytest

from repro.serve import ReproServer, ServeClient, ServeConfig


@pytest.fixture
def serve_factory(tmp_path):
    booted = []

    def boot(subdir="state", **overrides):
        overrides.setdefault("drain_grace_s", 2.0)
        config = ServeConfig(
            port=0, state_dir=str(tmp_path / subdir), **overrides
        )
        server = ReproServer(config)
        port = server.start()
        thread = threading.Thread(
            target=server._httpd.serve_forever, daemon=True
        )
        thread.start()
        booted.append(server)
        client = ServeClient(f"http://127.0.0.1:{port}", timeout_s=60.0)
        return server, client

    yield boot
    for server in booted:
        try:
            server.shutdown()
        except Exception:
            pass
