"""End-to-end daemon smoke: the CI serve-smoke scenario as a test.

Boots the real ``repro serve`` daemon in a subprocess, drives it over
HTTP with concurrent dse + verify jobs, SIGTERMs it mid-sweep, restarts
it over the surviving state directory, and asserts the recovered job's
design is bit-for-bit identical to a cold in-process batch run.
"""

import os
import re
import signal
import subprocess
import sys

import pytest

from repro.dse import auto_dse
from repro.dse.parallel import build_workload
from repro.serve import ServeClient
from repro.serve.jobs import design_fingerprint, dse_design_payload

pytestmark = pytest.mark.serve

_LISTENING = re.compile(
    r"listening on http://[\d.]+:(\d+) .*recovered=(\d+)"
)


def _batch_fingerprint(name, size):
    result = auto_dse(build_workload(name, size))
    return design_fingerprint(dse_design_payload(result, name, size))


class _Daemon:
    """One ``repro serve`` subprocess with its parsed address."""

    def __init__(self, state_dir, *extra_args):
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", str(state_dir), "--workers", "2", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=os.environ.copy(),
        )
        banner = self.process.stdout.readline()
        match = _LISTENING.search(banner)
        if not match:
            self.process.kill()
            raise AssertionError(f"daemon failed to boot: {banner!r}")
        self.port = int(match.group(1))
        self.recovered = int(match.group(2))
        self.client = ServeClient(f"http://127.0.0.1:{self.port}", timeout_s=60.0)

    def terminate(self, timeout_s=30.0):
        self.process.send_signal(signal.SIGTERM)
        out, _ = self.process.communicate(timeout=timeout_s)
        return out

    def kill(self):
        if self.process.poll() is None:
            self.process.kill()
            self.process.communicate(timeout=10)


def test_daemon_smoke_concurrent_sigterm_restart_resume(tmp_path):
    state_dir = tmp_path / "state"
    batch = {
        name: _batch_fingerprint(name, 48) for name in ("gemm", "bicg")
    }

    # Phase 1: boot, run dse + verify concurrently, check results.
    daemon = _Daemon(state_dir, "--drain-grace", "0.1")
    try:
        client = daemon.client
        assert client.wait_until_up(timeout_s=10)
        status, dse_job = client.submit("dse", "gemm", 48)
        assert status == 202
        status, verify_job = client.submit("verify", "gemm", 48)
        assert status == 202

        dse_record = client.wait_done(dse_job["job"], timeout_s=120)
        verify_record = client.wait_done(verify_job["job"], timeout_s=120)
        assert dse_record["status"] == "done", dse_record
        assert verify_record["status"] == "done", verify_record
        assert (
            design_fingerprint(dse_record["result"]["design"])
            == batch["gemm"]
        )
        assert verify_record["result"]["design"]["ok"] is True

        # Phase 2: submit a fresh sweep and SIGTERM mid-flight.  The
        # 0.1s drain grace guarantees the job is checkpointed, not
        # finished.
        status, payload = client.submit("dse", "bicg", 48)
        assert status == 202
        interrupted_job = payload["job"]
        out = daemon.terminate()
        assert "drained and stopped" in out
        assert daemon.process.returncode == 0
    finally:
        daemon.kill()

    # Phase 3: restart over the surviving state directory; the ledger
    # re-queues the interrupted job (SRV007) and its design must be
    # bit-for-bit the cold batch result.
    restarted = _Daemon(state_dir)
    try:
        assert restarted.recovered == 1
        client = restarted.client
        assert client.wait_until_up(timeout_s=10)
        record = client.wait_done(interrupted_job, timeout_s=120)
        assert record["status"] == "done", record
        assert (
            design_fingerprint(record["result"]["design"]) == batch["bicg"]
        )

        # The finished result is now a warm store hit.
        status, payload = client.submit("dse", "bicg", 48)
        assert status == 200
        assert design_fingerprint(payload["result"]["design"]) == batch["bicg"]

        out = restarted.terminate()
        assert "drained and stopped" in out
    finally:
        restarted.kill()
