"""HTTP surface of the daemon: endpoints, admission control, lifecycle."""

import urllib.request

import pytest

from repro.serve import ServerError

pytestmark = pytest.mark.serve


class TestEndpoints:
    def test_health_ready_status(self, serve_factory):
        _server, client = serve_factory()
        assert client.health()
        assert client.ready()
        status = client.status()
        assert status["draining"] is False
        assert status["queue"]["workers"] == 2
        assert status["store"]["entries"] == 0

    def test_unknown_routes_and_jobs_404(self, serve_factory):
        _server, client = serve_factory()
        assert client.request("GET", "/v1/nope")[0] == 404
        assert client.request("GET", "/v1/jobs/job-999")[0] == 404
        assert client.request("GET", "/v1/jobs/job-999/events")[0] == 404
        with pytest.raises(ServerError):
            client.close_session("s-unknown")

    def test_invalid_submissions_are_srv001(self, serve_factory):
        _server, client = serve_factory()
        for body in (
            {"kind": "compile", "workload": "gemm"},
            {"kind": "dse", "workload": "never-heard-of-it"},
            {"kind": "verify", "workload": "gemm", "options": {"jobs": 2}},
        ):
            status, payload = client.request("POST", "/v1/jobs", body)
            assert status == 400
            assert payload["code"] == "SRV001"
        status, payload = client.submit("dse", "gemm", 32, session="s-ghost")
        assert (status, payload["code"]) == (400, "SRV001")


class TestJobsAndCache:
    def test_verify_roundtrip_then_warm_hit(self, serve_factory):
        _server, client = serve_factory()
        status, payload = client.submit("verify", "gemm", 32)
        assert status == 202
        record = client.wait_done(payload["job"], timeout_s=60)
        assert record["status"] == "done"
        assert record["result"]["design"]["ok"] is True

        status, payload = client.submit("verify", "gemm", 32)
        assert status == 200, "repeat request must be a warm store hit"
        assert payload["cached"] is True
        assert payload["result"]["design"]["ok"] is True
        assert payload["fingerprint"]

        status, payload = client.submit("verify", "gemm", 32, force=True)
        assert status == 202, "force bypasses the store"
        client.wait_done(payload["job"], timeout_s=60)

    def test_events_stream_with_since(self, serve_factory):
        _server, client = serve_factory()
        _status, payload = client.submit("verify", "gemm", 32)
        job_id = payload["job"]
        client.wait_done(job_id, timeout_s=60)
        events = client.events(job_id)["events"]
        stages = [e["stage"] for e in events]
        assert stages[0] == "spawn"
        assert "finished" in stages
        assert [e["seq"] for e in events] == list(range(len(events)))
        later = client.events(job_id, since=len(events))["events"]
        assert later == []

    def test_sessions_group_jobs(self, serve_factory):
        _server, client = serve_factory()
        session = client.open_session()
        status, payload = client.submit("verify", "gemm", 32, session=session)
        assert status == 202
        client.wait_done(payload["job"], timeout_s=60)
        closed = client.close_session(session)
        assert closed["jobs"] == 1
        with pytest.raises(ServerError):
            client.close_session(session)


class TestAdmissionControl:
    def test_queue_full_is_429_with_retry_after(self, serve_factory):
        server, client = serve_factory(queue_limit=2, workers=1)
        # Freeze the scheduler so submissions stay pending: the 429 path
        # must be deterministic, not a race against worker startup.
        server.executor._start_ready_locked = lambda: None
        accepted = [client.submit("verify", "gemm", 32 + i) for i in range(2)]
        assert all(status == 202 for status, _ in accepted)
        status, payload = client.submit("verify", "gemm", 64)
        assert status == 429
        assert payload["code"] == "SRV002"
        assert payload["retry_after_s"] >= 1.0

        request = urllib.request.Request(
            client.base_url + "/v1/jobs",
            data=b'{"kind": "verify", "workload": "gemm", "size": 64}',
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected HTTP 429")
        except urllib.error.HTTPError as exc:
            assert exc.code == 429
            assert float(exc.headers["Retry-After"]) >= 1

    def test_draining_rejects_with_srv006(self, serve_factory):
        server, client = serve_factory()
        server.draining = True
        assert not client.ready()
        assert client.health(), "liveness stays up while draining"
        status, payload = client.submit("verify", "gemm", 32)
        assert (status, payload["code"]) == (503, "SRV006")


class TestLifecycle:
    def test_shutdown_reports_drain_outcome(self, serve_factory):
        server, client = serve_factory()
        _status, payload = client.submit("verify", "gemm", 32)
        client.wait_done(payload["job"], timeout_s=60)
        outcome = server.shutdown()
        assert outcome["finished"] == 1
        assert outcome["interrupted"] == 0
        assert not client.health(), "listener is down after shutdown"
