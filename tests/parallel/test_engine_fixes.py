"""Regression tests for the timing/retry bugfix round.

* the estimator retry backoff must not sleep through the per-candidate
  or whole-sweep deadlines;
* backoff wall time is attributed to ``stats.retry_backoff_s``, never
  inflated into ``stats.estimation_s``;
* ``auto_dse``'s early-raise paths never leave a created-but-unusable
  checkpoint journal behind;
* ``QuarantinedCandidate`` elapsed-time accounting.
"""

import time

import pytest

from repro.diagnostics import DiagnosticError
from repro.dse import auto_dse
from repro.dse.checkpoint import CheckpointJournal, make_header
from repro.dse.engine import _backoff_sleep
from repro.faults import Fault, FaultPlan
from repro.hls.device import DEFAULT_DEVICE
from repro.util.deadline import Deadline, DeadlineExceeded, deadline_scope
from repro.workloads import polybench
from repro.dse.options import DseOptions

pytestmark = pytest.mark.parallel


class TestDeadlineAwareBackoff:
    def test_backoff_raises_at_the_candidate_deadline(self):
        deadline = Deadline(0.05)
        start = time.perf_counter()
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceeded):
                _backoff_sleep(30.0)
        assert time.perf_counter() - start < 5.0

    def test_backoff_yields_at_the_sweep_deadline_without_raising(self):
        sweep = Deadline(0.05)
        start = time.perf_counter()
        slept = _backoff_sleep(30.0, sweep_deadline=sweep)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        assert slept <= elapsed

    def test_backoff_sleeps_the_full_duration_without_deadlines(self):
        start = time.perf_counter()
        slept = _backoff_sleep(0.08)
        assert time.perf_counter() - start >= 0.08
        # `slept` sums the requested naps (float rounding allowed).
        assert slept == pytest.approx(0.08, rel=0.2)

    def test_retry_backoff_respects_candidate_timeout(self, monkeypatch):
        """The old code slept RETRY_BACKOFF_S * 2**attempt unconditionally:
        with a huge backoff the candidate watchdog must still fire on
        time, quarantining the candidate as a DSE003 timeout."""
        monkeypatch.setattr("repro.dse.engine.RETRY_BACKOFF_S", 30.0)
        plan = FaultPlan([Fault("transient", 1, count=1)])
        start = time.perf_counter()
        result = auto_dse(polybench.gemm(16), options=DseOptions(fault_plan=plan, candidate_timeout_s=0.2))
        assert time.perf_counter() - start < 10.0
        assert result.stats.timeouts == 1
        timeout = next(
            q for q in result.quarantine if q.diagnostic.code == "DSE003"
        )
        assert timeout.elapsed_s is not None
        assert timeout.elapsed_s >= 0.2
        assert result.stats.timeout_s == pytest.approx(
            sum(
                q.elapsed_s
                for q in result.quarantine
                if q.diagnostic.code == "DSE003"
            )
        )

    def test_retry_backoff_respects_sweep_time_budget(self, monkeypatch):
        """With no candidate watchdog, the backoff must still give up at
        the whole-sweep budget so DSE004 degradation fires on time."""
        monkeypatch.setattr("repro.dse.engine.RETRY_BACKOFF_S", 30.0)
        plan = FaultPlan([Fault("transient", 1, count=1)])
        start = time.perf_counter()
        result = auto_dse(polybench.gemm(16), options=DseOptions(fault_plan=plan, time_budget_s=0.3))
        assert time.perf_counter() - start < 10.0
        assert result.stats.time_budget_hit
        assert "DSE004" in [d.code for d in result.diagnostics]
        assert result.report.total_cycles > 0  # degraded to a real design


class TestBackoffAttribution:
    def test_backoff_is_excluded_from_estimation_time(self, monkeypatch):
        """The backoff sleep used to be folded into stats.estimation_s by
        the finally-timer; it must land in stats.retry_backoff_s only."""
        monkeypatch.setattr("repro.dse.engine.RETRY_BACKOFF_S", 0.3)
        plan = FaultPlan([Fault("transient", 1, count=1)])
        result = auto_dse(polybench.gemm(16), options=DseOptions(fault_plan=plan))
        assert result.stats.estimator_retries == 1
        assert result.stats.retry_backoff_s >= 0.25
        # gemm(16) estimation is milliseconds; with the old bug the
        # 0.3s backoff would dominate estimation_s.
        assert result.stats.estimation_s < result.stats.retry_backoff_s
        assert "retry backoff" in result.stats.summary()

    def test_no_retries_means_no_backoff_attribution(self):
        result = auto_dse(polybench.gemm(16))
        assert result.stats.estimator_retries == 0
        assert result.stats.retry_backoff_s == 0.0


class TestNoStrayJournalOnEarlyRaise:
    """Every argument-validation raise must fire before journal creation."""

    def _assert_no_journal(self, path):
        assert not path.exists(), "early raise left a stray journal behind"

    def test_negative_time_budget(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(ValueError):
            auto_dse(polybench.gemm(16), options=DseOptions(checkpoint=str(journal), time_budget_s=-1.0))
        self._assert_no_journal(journal)

    def test_negative_candidate_timeout(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(ValueError):
            auto_dse(polybench.gemm(16), options=DseOptions(checkpoint=str(journal), candidate_timeout_s=-0.5))
        self._assert_no_journal(journal)

    def test_bad_jobs(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(ValueError):
            auto_dse(polybench.gemm(16), options=DseOptions(checkpoint=str(journal), jobs=-2))
        self._assert_no_journal(journal)

    def test_hang_plan_without_watchdog(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(ValueError):
            auto_dse(polybench.gemm(16), options=DseOptions(checkpoint=str(journal), fault_plan=FaultPlan([Fault("hang", 1)])))
        self._assert_no_journal(journal)

    def test_resume_without_checkpoint_path(self):
        with pytest.raises(DiagnosticError) as info:
            auto_dse(polybench.gemm(16), options=DseOptions(resume=True))
        assert info.value.code == "DSE005"

    def test_journal_discard_removes_the_file(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        function = polybench.gemm(16)
        header = make_header(function, DEFAULT_DEVICE, 1.0, 10.0, 256, False)
        journal = CheckpointJournal.create(str(path), header)
        assert path.exists()
        journal.discard()
        assert not path.exists()
        journal.discard()  # idempotent


class TestQuarantineElapsedAccounting:
    def test_timeout_quarantine_carries_elapsed_time(self):
        plan = FaultPlan([Fault("hang", 1)])
        result = auto_dse(polybench.gemm(16), options=DseOptions(fault_plan=plan, candidate_timeout_s=0.5))
        timeouts = [q for q in result.quarantine if q.diagnostic.code == "DSE003"]
        assert len(timeouts) == 1
        assert timeouts[0].elapsed_s is not None
        assert timeouts[0].elapsed_s >= 0.0
        assert result.stats.timeouts == 1
        assert result.stats.timeout_s == pytest.approx(timeouts[0].elapsed_s)

    def test_non_timeout_quarantine_has_no_elapsed(self):
        plan = FaultPlan([Fault("permanent", 1)])
        result = auto_dse(polybench.gemm(16), options=DseOptions(fault_plan=plan))
        assert len(result.quarantine) == 1
        candidate = result.quarantine[0]
        assert candidate.diagnostic.code == "DSE001"
        assert candidate.elapsed_s is None
        assert result.stats.timeout_s == 0.0
        assert str(candidate) == candidate.diagnostic.oneline()
