"""The process-pool substrate: ordered results, error/crash surfacing."""

import os
import time

import pytest

from repro.util.pool import TaskOutcome, WorkerPool, available_jobs, run_ordered

pytestmark = pytest.mark.parallel


def _double(x):
    return x * 2


def _sleep_then_echo(payload):
    index, delay = payload
    time.sleep(delay)
    return index


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _die_on_two(x):
    if x == 2:
        os._exit(3)
    return x


def test_available_jobs_is_at_least_one():
    assert available_jobs() >= 1


def test_run_ordered_returns_results_in_payload_order():
    # The first task sleeps longest: completion order is the reverse of
    # submission order, but the merge must not care.
    payloads = [(0, 0.15), (1, 0.05), (2, 0.0)]
    outcomes = run_ordered(_sleep_then_echo, payloads, jobs=3)
    assert [o.index for o in outcomes] == [0, 1, 2]
    assert [o.value for o in outcomes] == [0, 1, 2]
    assert all(o.ok for o in outcomes)


def test_run_ordered_bounded_concurrency_completes_everything():
    outcomes = run_ordered(_double, list(range(7)), jobs=2)
    assert [o.value for o in outcomes] == [0, 2, 4, 6, 8, 10, 12]


def test_run_ordered_captures_task_exceptions():
    outcomes = run_ordered(_fail_on_three, [1, 3, 5], jobs=2)
    assert outcomes[0].ok and outcomes[2].ok
    assert not outcomes[1].ok
    assert not outcomes[1].crashed
    assert "ValueError" in outcomes[1].error
    assert "three is right out" in outcomes[1].error


def test_run_ordered_detects_a_dead_worker_as_a_crash():
    outcomes = run_ordered(_die_on_two, [1, 2, 4], jobs=2)
    assert outcomes[0].value == 1
    assert outcomes[2].value == 4
    crashed = outcomes[1]
    assert crashed.crashed and not crashed.ok
    assert "died" in crashed.error
    assert "3" in crashed.error  # the exit code is reported


def test_run_ordered_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_ordered(_double, [1], jobs=0)


def test_task_outcome_ok_semantics():
    assert TaskOutcome(0, value=1).ok
    assert not TaskOutcome(0, error="boom").ok
    assert not TaskOutcome(0, error="died", crashed=True).ok


# -- persistent workers ------------------------------------------------------


def _init_base(base):
    return {"base": base}


def _add_task(state, payload):
    return state["base"] + payload


def _init_boom():
    raise RuntimeError("bad init")


def _task_maybe_fail(state, payload):
    if payload == "fail":
        raise ValueError("task failed")
    return payload


def test_worker_pool_threads_init_state_into_tasks():
    with WorkerPool(_init_base, (100,), _add_task, jobs=2) as pool:
        tickets = [pool.submit(i) for i in range(5)]
        # Resolve out of submission order: results buffer until taken.
        assert pool.result(tickets[3]) == 103
        assert pool.result(tickets[0]) == 100
        assert [pool.result(t) for t in tickets[1:3]] == [101, 102]
        assert pool.result(tickets[4]) == 104


def test_worker_pool_failed_init_resolves_tickets_to_none():
    pool = WorkerPool(_init_boom, (), _add_task, jobs=2)
    try:
        ticket = pool.submit(1)
        assert pool.result(ticket) is None
        assert pool.broken
        assert "bad init" in (pool.init_failure or "")
    finally:
        pool.close()


def test_worker_pool_task_exception_resolves_to_none():
    with WorkerPool(_init_base, (0,), _task_maybe_fail, jobs=1) as pool:
        bad = pool.submit("fail")
        good = pool.submit("ok")
        assert pool.result(bad) is None
        assert pool.result(good) == "ok"


def test_worker_pool_close_is_idempotent():
    pool = WorkerPool(_init_base, (0,), _add_task, jobs=1)
    pool.close()
    pool.close()


def test_worker_pool_rejects_bad_jobs():
    with pytest.raises(ValueError):
        WorkerPool(_init_base, (0,), _add_task, jobs=0)
