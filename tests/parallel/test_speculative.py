"""Speculative candidate evaluation: ``jobs=N`` sweeps are bit-identical.

Mirrors ``tests/dse/test_cache.py``: the cached-equals-uncached contract
extends to *parallel equals sequential* -- same reports, same schedules,
same tile vectors, same evaluation counts, byte-identical MLIR.
"""

import pytest

from repro.affine import print_func
from repro.dse import auto_dse
from repro.faults import Fault, FaultPlan
from repro.workloads import polybench
from repro.dse.options import DseOptions

pytestmark = pytest.mark.parallel

SPEC_WORKLOADS = ["gemm", "bicg", "mm2", "gesummv"]


def _schedule_fps(result):
    return [d.fingerprint() for d in result.schedule]


def _assert_identical(parallel, sequential):
    assert parallel.report == sequential.report
    assert _schedule_fps(parallel) == _schedule_fps(sequential)
    assert parallel.tile_vectors() == sequential.tile_vectors()
    assert parallel.evaluations == sequential.evaluations
    assert parallel.stats.candidates == sequential.stats.candidates
    assert [
        (q.parallelism, q.bank_cap, q.diagnostic.code) for q in parallel.quarantine
    ] == [
        (q.parallelism, q.bank_cap, q.diagnostic.code) for q in sequential.quarantine
    ]
    assert print_func(parallel.function.lower()) == print_func(
        sequential.function.lower()
    )


class TestSpeculativeEqualsSequential:
    @pytest.mark.parametrize("name", SPEC_WORKLOADS)
    def test_identical_results(self, name):
        factory = getattr(polybench, name)
        sequential = auto_dse(factory(16))
        parallel = auto_dse(factory(16), options=DseOptions(jobs=2))
        _assert_identical(parallel, sequential)
        assert parallel.stats.speculation_jobs == 2
        assert parallel.stats.speculative_submitted > 0

    def test_identical_when_uncached(self):
        # The full matrix: uncached+parallel == cached+sequential.
        sequential = auto_dse(polybench.gemm(16))
        parallel = auto_dse(polybench.gemm(16), options=DseOptions(cache=False, jobs=2))
        _assert_identical(parallel, sequential)

    def test_more_workers_than_work(self):
        sequential = auto_dse(polybench.bicg(16))
        parallel = auto_dse(polybench.bicg(16), options=DseOptions(jobs=4))
        _assert_identical(parallel, sequential)
        assert parallel.stats.speculation_jobs == 4


def test_jobs_one_means_no_speculation():
    result = auto_dse(polybench.gemm(16), options=DseOptions(jobs=1))
    assert result.stats.speculation_jobs == 0
    assert result.stats.speculative_submitted == 0


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        auto_dse(polybench.gemm(16), options=DseOptions(jobs=0))


def test_speculative_sweep_journals_every_candidate(tmp_path):
    """Remote commits write the same journal records as local ones."""
    journal = tmp_path / "gemm.jsonl"
    first = auto_dse(polybench.gemm(16), options=DseOptions(checkpoint=str(journal), jobs=2))
    assert first.stats.speculative_used > 0  # remote commits happened
    resumed = auto_dse(polybench.gemm(16), options=DseOptions(checkpoint=str(journal), resume=True))
    assert resumed.report == first.report
    assert resumed.tile_vectors() == first.tile_vectors()
    assert resumed.stats.replayed == first.stats.candidates
    assert resumed.stats.candidates == 0


def test_speculation_disabled_under_fault_injection():
    """Faults key on sequential ordinals: jobs>1 degrades to sequential
    with a DSE008 note, and the faulty run still converges."""
    baseline = auto_dse(polybench.gemm(16))
    plan = FaultPlan([Fault("transient", 1, count=1)])
    result = auto_dse(polybench.gemm(16), options=DseOptions(fault_plan=plan, jobs=4))
    assert result.stats.speculation_jobs == 0
    assert result.stats.speculative_submitted == 0
    assert "DSE008" in [d.code for d in result.diagnostics]
    assert result.report == baseline.report
    assert result.tile_vectors() == baseline.tile_vectors()
    assert plan.fired == [("transient", 1)]
