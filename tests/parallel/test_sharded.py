"""Sharded sweeps: worker-process isolation with a deterministic merge."""

import os

import pytest

from repro.dse import auto_dse
from repro.dse.parallel import (
    DEFAULT_SWEEP,
    ShardSpec,
    build_workload,
    default_sweep_specs,
    run_sharded_sweep,
    shard_journal_path,
)
from repro.dse.stats import DseStats
from repro.faults import Fault, FaultPlan
from repro.dse.options import DseOptions

pytestmark = pytest.mark.parallel

SIZE = 16


def fingerprint(result):
    return (
        result.report.total_cycles,
        result.report.resources.dsp,
        result.report.resources.lut,
        result.report.resources.ff,
        result.tile_vectors(),
        [d.fingerprint() for d in result.schedule],
    )


def _sequential_baselines(specs):
    return {
        spec.label: auto_dse(build_workload(spec.workload, spec.size), options=DseOptions(fault_plan=spec.fault_plan))
        for spec in specs
    }


def test_build_workload_rejects_unknown_names():
    with pytest.raises(ValueError):
        build_workload("definitely-not-a-workload")


def test_sharded_sweep_matches_sequential_sweeps():
    specs = default_sweep_specs(size=SIZE)
    assert [spec.workload for spec in specs] == list(DEFAULT_SWEEP)
    sweep = run_sharded_sweep(specs, jobs=2)
    assert sweep.ok
    baselines = _sequential_baselines(specs)
    for shard in sweep.shards:
        baseline = baselines[shard.spec.label]
        assert fingerprint(shard.result) == fingerprint(baseline), shard.spec.label
        assert shard.result.evaluations == baseline.evaluations, shard.spec.label


def test_merged_stats_equal_the_sum_of_shard_stats():
    sweep = run_sharded_sweep(default_sweep_specs(size=SIZE), jobs=2)
    assert sweep.ok
    shard_stats = [shard.result.stats for shard in sweep.shards]
    for field_name in (
        "evaluations", "candidates", "estimations", "lowerings",
        "quarantined", "eval_cache_hits", "eval_cache_misses",
    ):
        assert getattr(sweep.stats, field_name) == sum(
            getattr(s, field_name) for s in shard_stats
        ), field_name
    assert sweep.stats.total_s == pytest.approx(
        sum(s.total_s for s in shard_stats)
    )
    # isl counters merge key-wise.
    for key, (hits, misses) in sweep.stats.isl_counters.items():
        assert hits == sum(s.isl_counters.get(key, (0, 0))[0] for s in shard_stats)
        assert misses == sum(s.isl_counters.get(key, (0, 0))[1] for s in shard_stats)


def test_checkpoint_dir_gets_one_journal_per_shard(tmp_path):
    directory = tmp_path / "journals"
    specs = default_sweep_specs(size=SIZE)
    sweep = run_sharded_sweep(specs, jobs=2, checkpoint_dir=str(directory))
    assert sweep.ok
    expected = {
        os.path.basename(shard_journal_path(str(directory), spec))
        for spec in specs
    }
    assert set(os.listdir(directory)) == expected
    assert expected == {f"{name}-{SIZE}.journal" for name in DEFAULT_SWEEP}


def test_crashed_shard_resumes_from_its_journal(tmp_path):
    """An injected worker crash loses nothing: the driver retries the
    shard with resume=True against its journal and converges to the
    fault-free result."""
    baseline = auto_dse(build_workload("gemm", SIZE))
    specs = [
        ShardSpec("gemm", size=SIZE, fault_plan=FaultPlan([Fault("crash", 2)])),
        ShardSpec("bicg", size=SIZE),
    ]
    sweep = run_sharded_sweep(specs, jobs=2, checkpoint_dir=str(tmp_path))
    assert sweep.ok
    crashed = sweep.shards[0]
    assert crashed.crashed and crashed.retried
    assert fingerprint(crashed.result) == fingerprint(baseline)
    # The retry replayed the candidates journaled before the crash.
    assert crashed.result.stats.replayed >= 1
    assert not sweep.shards[1].crashed


def test_crashed_shard_without_retry_is_reported(tmp_path):
    specs = [
        ShardSpec("gemm", size=SIZE, fault_plan=FaultPlan([Fault("crash", 1)])),
    ]
    sweep = run_sharded_sweep(
        specs, jobs=1, checkpoint_dir=str(tmp_path), retry_crashed=False
    )
    assert not sweep.ok
    assert sweep.failures[0].crashed
    assert "died" in sweep.failures[0].error


@pytest.mark.parametrize("seed", [3, 11])
def test_seeded_fault_injection_through_the_pool(tmp_path, seed):
    """Shards carrying seeded fault plans still merge to the sequential
    faulty results -- the pool adds no nondeterminism to the chaos path."""
    kinds = ("transient", "permanent")
    specs = [
        ShardSpec(
            name,
            size=SIZE,
            fault_plan=FaultPlan.random(seed=seed + i, candidates=10, kinds=kinds),
        )
        for i, name in enumerate(DEFAULT_SWEEP)
    ]
    sweep = run_sharded_sweep(specs, jobs=2, checkpoint_dir=str(tmp_path))
    assert sweep.ok
    for i, shard in enumerate(sweep.shards):
        plan = FaultPlan.random(seed=seed + i, candidates=10, kinds=kinds)
        expected = auto_dse(build_workload(shard.spec.workload, SIZE), options=DseOptions(fault_plan=plan))
        assert fingerprint(shard.result) == fingerprint(expected), shard.spec.label
        assert [
            (q.parallelism, q.bank_cap, q.diagnostic.code)
            for q in shard.result.quarantine
        ] == [
            (q.parallelism, q.bank_cap, q.diagnostic.code)
            for q in expected.quarantine
        ], shard.spec.label


def test_quarantine_and_diagnostics_merge_in_shard_order():
    specs = [
        ShardSpec(
            name,
            size=SIZE,
            fault_plan=FaultPlan([Fault("permanent", 1)]),
        )
        for name in ("gemm", "bicg")
    ]
    sweep = run_sharded_sweep(specs, jobs=2)
    assert sweep.ok
    # One quarantine per shard, merged in shard declaration order --
    # never in completion order.
    labels = [label for label, _ in sweep.quarantine]
    assert labels == [f"gemm({SIZE})", f"bicg({SIZE})"]
    for _, candidate in sweep.quarantine:
        assert candidate.diagnostic.code == "DSE001"
    assert sweep.stats.quarantined == 2


def test_stats_merge_unit_semantics():
    a = DseStats(cache_enabled=True)
    a.evaluations, a.total_s, a.speculation_jobs = 3, 1.5, 4
    a.interrupted = True
    a.isl_counters = {"bounds": (10, 2), "emptiness": (1, 1)}
    b = DseStats(cache_enabled=False)
    b.evaluations, b.total_s, b.speculation_jobs = 5, 0.25, 2
    b.time_budget_hit = True
    b.isl_counters = {"bounds": (5, 5)}
    merged = DseStats.merge([a, b])
    assert merged.evaluations == 8
    assert merged.total_s == pytest.approx(1.75)
    assert merged.cache_enabled is False      # all()
    assert merged.interrupted is True         # any()
    assert merged.time_budget_hit is True     # any()
    assert merged.speculation_jobs == 4       # max()
    assert merged.isl_counters == {"bounds": (15, 7), "emptiness": (1, 1)}


def test_stats_merge_of_nothing_is_the_default():
    merged = DseStats.merge([])
    assert merged.evaluations == 0
    assert merged.speculation_jobs == 0
    assert merged.cache_enabled is True  # all() over nothing
    assert merged.isl_counters == {}
