"""Unit tests for the coarse-grained dependence graph (paper Fig. 8)."""

import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.depgraph import build_dependence_graph


@pytest.fixture()
def fig8_function():
    """The four-statement example of paper Fig. 8."""
    with Function("fig8") as f:
        N = 4
        i = var("i", 0, N)
        j = var("j", 0, N)
        k = var("k", 0, N)
        A = placeholder("A", (N, N))
        B = placeholder("B", (N, N))
        C = placeholder("C", (N, N))
        D = placeholder("D", (N, N))
        compute("S1", [i, j, k], A(i, j) * 2.0, A(i, j))
        compute("S2", [i, j, k], A(i, j) + B(i, j), B(i, j))
        compute("S3", [i, j, k], A(i, j) + C(i, j), C(i, j))
        compute("S4", [i, j, k], D(i, j) + B(i, k) * C(k, j), D(i, j))
    return f


class TestConstruction:
    def test_nodes(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        assert set(g.nodes) == {"S1", "S2", "S3", "S4"}

    def test_edges_match_paper(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        edges = {(e.src, e.dst) for e in g.edges}
        assert edges == {("S1", "S2"), ("S1", "S3"), ("S2", "S4"), ("S3", "S4")}

    def test_dependence_map_matches_paper(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        assert g.dependence_map["S1"]["S2"] == 1
        assert g.dependence_map["S1"]["S3"] == 1
        assert g.dependence_map["S2"]["S4"] == 1
        assert g.dependence_map["S3"]["S4"] == 1
        assert "S4" not in g.dependence_map["S1"]

    def test_edge_arrays(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        edge = next(e for e in g.edges if (e.src, e.dst) == ("S2", "S4"))
        assert edge.arrays == {"B"}


class TestTraversal:
    def test_sources_and_sinks(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        assert g.sources() == ["S1"]
        assert g.sinks() == ["S4"]

    def test_data_paths_match_paper(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        paths = {tuple(p) for p in g.data_paths()}
        assert paths == {("S1", "S2", "S4"), ("S1", "S3", "S4")}

    def test_successors_predecessors(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        assert set(g.successors("S1")) == {"S2", "S3"}
        assert g.predecessors("S4") == ["S2", "S3"]

    def test_topological_order(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        assert g.topological_order() == ["S1", "S2", "S3", "S4"]


class TestAnalysisIntegration:
    def test_analyze_populates_attributes(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=True)
        for name in g.nodes:
            assert g.nodes[name].analysis is not None

    def test_lazy_node_analysis(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        assert g.nodes["S4"].analysis is None
        analysis = g.node_analysis("S4")
        assert analysis.reduction_dims == ["k"]
        assert g.nodes["S4"].analysis is analysis

    def test_s4_guidance_matches_paper(self, fig8_function):
        """Fig. 8: S4 has loop-carried dependence in k -> interchange hint."""
        g = build_dependence_graph(fig8_function)
        analysis = g.node_analysis("S4")
        assert analysis.has_tight_innermost_dependence()
        assert analysis.free_dims() == ["i", "j"]

    def test_edge_alignment(self, fig8_function):
        g = build_dependence_graph(fig8_function, analyze=False)
        edge = next(e for e in g.edges if (e.src, e.dst) == ("S1", "S2"))
        assert g.edge_alignment(edge) == {"A": (0, 0)}


class TestIndependentComputes:
    def test_no_edges(self):
        with Function("indep") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            B = placeholder("B", (4,))
            C = placeholder("C", (4,))
            D = placeholder("D", (4,))
            compute("X", [i], A(i) + 1.0, B(i))
            compute("Y", [i], C(i) + 1.0, D(i))
        g = build_dependence_graph(f, analyze=False)
        assert not g.edges
        assert set(g.sources()) == {"X", "Y"}
        assert {tuple(p) for p in g.data_paths()} == {("X",), ("Y",)}

    def test_waw_creates_edge(self):
        with Function("waw") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            B = placeholder("B", (4,))
            compute("X", [i], A(i) + 1.0, B(i))
            compute("Y", [i], A(i) * 2.0, B(i))
        g = build_dependence_graph(f, analyze=False)
        assert {(e.src, e.dst) for e in g.edges} == {("X", "Y")}
