"""Unit tests for the DOT export of the dependence graph."""

from repro.depgraph import build_dependence_graph
from repro.depgraph.dot import to_dot, write_dot
from repro.workloads import image, polybench


class TestToDot:
    def test_nodes_and_edges_present(self):
        graph = build_dependence_graph(image.edge_detect(16))
        dot = to_dot(graph)
        for node in ("Ssm", "Sgx", "Sgy", "Smag"):
            assert f'"{node}"' in dot
        assert '"Ssm" -> "Sgx" [label="smooth"]' in dot
        assert '"Sgy" -> "Smag" [label="gy"]' in dot

    def test_analysis_in_labels(self):
        graph = build_dependence_graph(polybench.gemm(8))
        dot = to_dot(graph)
        assert "reduction: k" in dot
        assert "carried RAW: k" in dot

    def test_no_analysis_mode(self):
        graph = build_dependence_graph(polybench.gemm(8), analyze=False)
        dot = to_dot(graph, include_analysis=False)
        assert "reduction" not in dot
        assert '"s"' in dot

    def test_well_formed(self):
        graph = build_dependence_graph(polybench.mm3(8))
        dot = to_dot(graph)
        assert dot.startswith('digraph "mm3" {')
        assert dot.endswith("}")
        assert dot.count("->") == len(graph.edges)

    def test_write_dot(self, tmp_path):
        graph = build_dependence_graph(polybench.bicg(8))
        path = tmp_path / "graph.dot"
        write_dot(graph, str(path))
        assert path.read_text().startswith('digraph "bicg"')
