"""Unit tests for fine-grained dependence analysis on paper examples."""

import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.depgraph import RAW, WAR, analyze_compute, cross_offsets, domain_of


def make_fig1_stencil():
    """Paper Fig. 1: A[i][j] = A[i-1][j-1] * 2 + 3 over 1 <= i, j <= 4."""
    with Function("fig1") as f:
        i = var("i", 1, 5)
        j = var("j", 1, 5)
        A = placeholder("A", (6, 6))
        s = compute("S", [i, j], A(i - 1, j - 1) * 2.0 + 3.0, A(i, j))
    return f, s


def make_reduction():
    """Fig. 8 S4: D[i][j] += B[i][k] * C[k][j]."""
    with Function("s4") as f:
        i = var("i", 0, 8)
        j = var("j", 0, 8)
        k = var("k", 0, 8)
        B = placeholder("B", (8, 8))
        C = placeholder("C", (8, 8))
        D = placeholder("D", (8, 8))
        s = compute("S4", [i, j, k], D(i, j) + B(i, k) * C(k, j), D(i, j))
    return f, s


class TestFig1Stencil:
    def test_distance_vector(self):
        _, s = make_fig1_stencil()
        analysis = analyze_compute(s)
        raws = analysis.carried_raw()
        assert len(raws) == 1
        assert raws[0].distance.entries == (1, 1)

    def test_direction_vector(self):
        _, s = make_fig1_stencil()
        raws = analyze_compute(s).carried_raw()
        assert str(raws[0].direction) == "(<, <)"

    def test_carried_at_outer_level(self):
        _, s = make_fig1_stencil()
        raws = analyze_compute(s).carried_raw()
        assert raws[0].level == 0
        assert raws[0].carried_dim == "i"

    def test_min_distance(self):
        _, s = make_fig1_stencil()
        raws = analyze_compute(s).carried_raw()
        assert raws[0].min_distance == 1

    def test_no_reduction_dims(self):
        _, s = make_fig1_stencil()
        assert analyze_compute(s).reduction_dims == []

    def test_war_dependence_exists(self):
        # write A[i][j], read A[i-1][j-1]: the anti-dependence runs backwards
        # in iteration space, so no carried WAR exists (it would be lex-negative).
        _, s = make_fig1_stencil()
        wars = [d for d in analyze_compute(s).carried if d.kind == WAR]
        assert wars == []


class TestReduction:
    def test_reduction_dim_detected(self):
        _, s = make_reduction()
        assert analyze_compute(s).reduction_dims == ["k"]

    def test_carried_at_k(self):
        _, s = make_reduction()
        raws = analyze_compute(s).carried_raw()
        assert len(raws) == 1
        assert raws[0].carried_dim == "k"

    def test_elementary_distance_matches_paper(self):
        # Paper Fig. 8-3 reports distance vector (0, 0, 1).
        _, s = make_reduction()
        raw = analyze_compute(s).carried_raw()[0]
        assert raw.elementary_distance().entries == (0, 0, 1)

    def test_free_dims(self):
        _, s = make_reduction()
        assert analyze_compute(s).free_dims() == ["i", "j"]

    def test_tight_innermost(self):
        _, s = make_reduction()
        assert analyze_compute(s).has_tight_innermost_dependence()


class TestBicg:
    """The motivating example (Section II-D): conflicting carried deps."""

    @pytest.fixture()
    def graph_nodes(self):
        with Function("bicg") as f:
            N = 8
            i = var("i", 0, N)
            j = var("j", 0, N)
            A = placeholder("A", (N, N))
            p = placeholder("p", (N,))
            q = placeholder("q", (N,))
            r = placeholder("r", (N,))
            s = placeholder("s", (N,))
            Sq = compute("Sq", [i, j], q(i) + A(i, j) * p(j), q(i))
            Ss = compute("Ss", [i, j], s(j) + r(i) * A(i, j), s(j))
        return Sq, Ss

    def test_q_carried_at_inner_j(self, graph_nodes):
        Sq, _ = graph_nodes
        analysis = analyze_compute(Sq)
        assert analysis.dims_with_carried_raw() == ["j"]
        assert analysis.has_tight_innermost_dependence()

    def test_s_carried_at_outer_i(self, graph_nodes):
        _, Ss = graph_nodes
        analysis = analyze_compute(Ss)
        assert analysis.dims_with_carried_raw() == ["i"]
        assert not analysis.has_tight_innermost_dependence()

    def test_conflicting_preferences(self, graph_nodes):
        """No single loop order frees the innermost level for both."""
        Sq, Ss = graph_nodes
        free_q = set(analyze_compute(Sq).free_dims())
        free_s = set(analyze_compute(Ss).free_dims())
        assert free_q == {"i"}
        assert free_s == {"j"}
        assert not (free_q & free_s)


class TestNoDependence:
    def test_elementwise_has_no_carried_raw(self):
        with Function("ew") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            B = placeholder("B", (8,))
            s = compute("S", [i], A(i) * 2.0, B(i))
        analysis = analyze_compute(s)
        assert analysis.carried_raw() == []
        assert analysis.free_dims() == ["i"]

    def test_same_array_no_overlap(self):
        # reads A[i], writes A[i]: self RAW only loop-independent, not carried
        with Function("inplace") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            s = compute("S", [i], A(i) + 1.0, A(i))
        assert analyze_compute(s).carried_raw() == []


class TestDomainOf:
    def test_box_matches_iters(self):
        _, s = make_reduction()
        dom = domain_of(s)
        assert dom.dims == ("i", "j", "k")
        assert dom.count_points() == 512

    def test_custom_order(self):
        _, s = make_reduction()
        dom = domain_of(s, dims=["k", "i", "j"])
        assert dom.dims == ("k", "i", "j")


class TestCrossOffsets:
    def test_aligned_producer_consumer(self):
        with Function("pc") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            B = placeholder("B", (8,))
            C = placeholder("C", (8,))
            p = compute("P", [i], A(i) + 1.0, B(i))
            c = compute("C_", [i], B(i) * 2.0, C(i))
        offsets = cross_offsets(p, c)
        assert offsets == {"B": (0,)}

    def test_shifted_consumer(self):
        with Function("pc2") as f:
            i = var("i", 1, 8)
            A = placeholder("A", (9,))
            B = placeholder("B", (9,))
            C = placeholder("C", (9,))
            p = compute("P", [i], A(i) + 1.0, B(i))
            c = compute("C_", [i], B(i - 1) * 2.0, C(i))
        assert cross_offsets(p, c) == {"B": (-1,)}

    def test_unaligned(self):
        with Function("pc3") as f:
            i = var("i", 0, 4)
            j = var("j", 0, 4)
            B = placeholder("B", (4, 4))
            C = placeholder("C", (4, 4))
            A = placeholder("A", (4, 4))
            p = compute("P", [i, j], A(i, j) + 1.0, B(i, j))
            c = compute("C_", [i, j], B(j, i) * 2.0, C(i, j))
        assert cross_offsets(p, c) == {"B": None}
