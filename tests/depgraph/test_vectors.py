"""Unit tests for distance and direction vectors."""

import pytest

from repro.depgraph.vectors import ANY, EQ, GT, LT, DirectionVector, DistanceVector, permute


class TestDistanceVector:
    def test_indexing_by_dim(self):
        v = DistanceVector(("i", "j", "k"), (0, 0, 1))
        assert v["k"] == 1
        assert v["i"] == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DistanceVector(("i",), (0, 1))

    def test_is_zero(self):
        assert DistanceVector(("i",), (0,)).is_zero()
        assert not DistanceVector(("i",), (1,)).is_zero()
        assert not DistanceVector(("i",), (None,)).is_zero()

    def test_carried_level(self):
        assert DistanceVector(("i", "j"), (0, 1)).carried_level() == 1
        assert DistanceVector(("i", "j"), (1, 0)).carried_level() == 0
        assert DistanceVector(("i", "j"), (0, 0)).carried_level() is None

    def test_carried_level_unknown_entry(self):
        assert DistanceVector(("i", "j"), (None, 1)).carried_level() == 0

    def test_str_renders_star(self):
        assert str(DistanceVector(("i", "j"), (1, None))) == "(1, *)"


class TestDirectionVector:
    def test_from_distance(self):
        d = DistanceVector(("i", "j", "k"), (1, -2, 0)).direction()
        assert d.entries == (LT, GT, EQ)

    def test_from_unknown_distance(self):
        d = DistanceVector(("i",), (None,)).direction()
        assert d.entries == (ANY,)

    def test_invalid_entry_rejected(self):
        with pytest.raises(ValueError):
            DirectionVector(("i",), ("?",))

    def test_lex_positive(self):
        assert DirectionVector(("i", "j"), (LT, GT)).is_lexicographically_positive()
        assert DirectionVector(("i", "j"), (EQ, LT)).is_lexicographically_positive()
        assert not DirectionVector(("i", "j"), (GT, LT)).is_lexicographically_positive()
        assert not DirectionVector(("i", "j"), (EQ, EQ)).is_lexicographically_positive()
        assert not DirectionVector(("i", "j"), (ANY, LT)).is_lexicographically_positive()

    def test_paper_fig1_direction(self):
        # Fig. 1: distance (1, 1) -> direction (<, <)
        d = DistanceVector(("i", "j"), (1, 1)).direction()
        assert str(d) == "(<, <)"


class TestPermute:
    def test_interchange_swaps_entries(self):
        v = DistanceVector(("i", "j"), (0, 1))
        swapped = permute(v, ("j", "i"))
        assert swapped.dims == ("j", "i")
        assert swapped.entries == (1, 0)

    def test_interchange_changes_carried_level(self):
        v = DistanceVector(("i", "j"), (0, 1))
        assert v.carried_level() == 1
        assert permute(v, ("j", "i")).carried_level() == 0
