"""Unit tests for schedule serialization (save / re-apply)."""

import json

import numpy as np
import pytest

from repro.dsl.serialize import (
    ScheduleFormatError,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.pipeline import estimate
from repro.workloads import polybench, stencils


class TestRoundTrip:
    def test_dse_schedule_roundtrips(self):
        searched = polybench.bicg(64)
        result = searched.auto_DSE()
        data = schedule_to_dict(searched)

        fresh = polybench.bicg(64)
        schedule_from_dict(fresh, data)
        assert estimate(fresh).total_cycles == result.report.total_cycles

    def test_json_serializable(self):
        f = polybench.gemm(32)
        f.auto_DSE()
        text = json.dumps(schedule_to_dict(f))
        data = json.loads(text)
        fresh = polybench.gemm(32)
        schedule_from_dict(fresh, data)
        assert len(fresh.schedule) == len(f.schedule)

    def test_partitions_roundtrip(self):
        f = polybench.gemm(32)
        f.placeholders()[0].partition([4, 8], "cyclic")
        data = schedule_to_dict(f)
        fresh = polybench.gemm(32)
        schedule_from_dict(fresh, data)
        scheme = fresh.placeholders()[0].partition_scheme
        assert scheme.factors == (4, 8)
        assert scheme.kind == "cyclic"

    def test_structural_after_roundtrips(self):
        f = stencils.jacobi_1d(32, steps=4)
        data = schedule_to_dict(f)
        fresh = stencils.jacobi_1d(32, steps=4)
        fresh.reset_schedule()
        schedule_from_dict(fresh, data)
        assert len(fresh.structural_directives()) == 1

    def test_file_io(self, tmp_path):
        f = polybench.gemm(32)
        f.auto_DSE()
        path = tmp_path / "schedule.json"
        save_schedule(f, str(path))
        fresh = polybench.gemm(32)
        load_schedule(fresh, str(path))
        assert estimate(fresh).total_cycles == estimate(f).total_cycles

    def test_semantics_preserved_after_reload(self):
        from repro.affine import interpret
        from repro.pipeline import lower_to_affine

        searched = polybench.bicg(16)
        searched.auto_DSE()
        data = schedule_to_dict(searched)
        fresh = polybench.bicg(16)
        schedule_from_dict(fresh, data)

        expected = fresh.allocate_arrays(seed=4)
        polybench.bicg(16).reference_execute(expected)
        got = fresh.allocate_arrays(seed=4)
        interpret(lower_to_affine(fresh), got)
        for name in expected:
            np.testing.assert_allclose(got[name], expected[name], rtol=1e-3)


class TestValidation:
    def test_missing_directives_key(self):
        with pytest.raises(ScheduleFormatError):
            schedule_from_dict(polybench.gemm(8), {})

    def test_unknown_directive_kind(self):
        data = {"directives": [{"kind": "Vectorize", "compute_name": "s"}]}
        with pytest.raises(ScheduleFormatError):
            schedule_from_dict(polybench.gemm(8), data)

    def test_unknown_compute_rejected(self):
        data = {
            "directives": [
                {"kind": "Pipeline", "compute_name": "zzz", "level": "i", "ii": 1}
            ]
        }
        with pytest.raises(ScheduleFormatError):
            schedule_from_dict(polybench.gemm(8), data)

    def test_unknown_array_rejected(self):
        data = {
            "directives": [],
            "partitions": {"ZZZ": {"factors": [2], "kind": "cyclic"}},
        }
        with pytest.raises(ScheduleFormatError):
            schedule_from_dict(polybench.gemm(8), data)

    def test_bad_fields_rejected(self):
        data = {"directives": [{"kind": "Split", "compute_name": "s"}]}
        with pytest.raises(ScheduleFormatError):
            schedule_from_dict(polybench.gemm(8), data)


class TestCliIntegration:
    def test_save_then_load(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sched.json"
        assert main([
            "compile", "gemm", "--size", "32", "--dse",
            "--save-schedule", str(path), "--emit", "report",
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "compile", "gemm", "--size", "32",
            "--load-schedule", str(path), "--emit", "report",
        ]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]
