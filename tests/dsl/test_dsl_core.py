"""Unit tests for vars, placeholders, dtypes, computes, and functions."""

import numpy as np
import pytest

from repro.dsl import (
    Function,
    compute,
    current_function,
    dtypes,
    float32,
    int32,
    placeholder,
    var,
)
from repro.dsl.placeholder import PartitionScheme
from repro.dsl.schedule import Pipeline, Split, Tile, Unroll


class TestDtypes:
    def test_numpy_mapping(self):
        assert dtypes.float32.np_dtype == np.float32
        assert dtypes.int8.np_dtype == np.int8
        assert dtypes.uint16.np_dtype == np.uint16

    def test_c_names(self):
        assert dtypes.float64.c_name == "double"
        assert dtypes.int32.c_name == "int32_t"

    def test_by_name(self):
        assert dtypes.by_name("float32") is dtypes.float32
        with pytest.raises(KeyError):
            dtypes.by_name("float16")

    def test_paper_aliases(self):
        assert dtypes.p_float32 is dtypes.float32


class TestVar:
    def test_ranged(self):
        i = var("i", 0, 32)
        assert i.extent == 32
        assert i.has_range

    def test_rangeless(self):
        i0 = var("i0")
        assert not i0.has_range
        with pytest.raises(ValueError):
            _ = i0.extent

    def test_half_bounds_rejected(self):
        with pytest.raises(ValueError):
            var("i", 0, None)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            var("i", 5, 5)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            var("2i", 0, 4)


class TestPlaceholder:
    def test_basics(self):
        A = placeholder("A", (32, 16), float32)
        assert A.shape == (32, 16)
        assert A.n_elements == 512
        assert A.size_bits == 512 * 32

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            placeholder("A", ())
        with pytest.raises(ValueError):
            placeholder("A", (0, 4))

    def test_partition(self):
        A = placeholder("A", (32, 32))
        A.partition([4, 4], "cyclic")
        assert A.partition_scheme == PartitionScheme((4, 4), "cyclic")
        assert A.partition_scheme.total_banks == 16

    def test_partition_validation(self):
        A = placeholder("A", (32, 32))
        with pytest.raises(ValueError):
            A.partition([4], "cyclic")
        with pytest.raises(ValueError):
            A.partition([64, 4], "cyclic")
        with pytest.raises(ValueError):
            A.partition([4, 4], "diagonal")

    def test_allocate(self):
        A = placeholder("A", (4, 4), int32)
        buf = A.allocate()
        assert buf.shape == (4, 4)
        assert buf.dtype == np.int32
        assert (buf == 0).all()

    def test_allocate_random(self):
        A = placeholder("A", (4, 4), float32)
        rng = np.random.default_rng(0)
        buf = A.allocate(rng)
        assert buf.dtype == np.float32
        assert not (buf == 0).all()


class TestFunctionContext:
    def test_computes_register(self):
        with Function("f") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            B = placeholder("B", (4,))
            s = compute("s", [i], A(i) + 1.0, B(i))
        assert f.computes == [s]
        assert s.function is f

    def test_current_function_scoping(self):
        assert current_function() is None
        with Function("outer") as f:
            assert current_function() is f
        assert current_function() is None

    def test_duplicate_compute_names_rejected(self):
        with Function("f") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            compute("s", [i], A(i) + 1.0, A(i))
            with pytest.raises(ValueError):
                compute("s", [i], A(i) + 2.0, A(i))

    def test_placeholders_first_use_order(self):
        with Function("f") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            B = placeholder("B", (4,))
            compute("s", [i], B(i) * 2.0, A(i))
        assert [p.name for p in f.placeholders()] == ["A", "B"]

    def test_get_compute(self):
        with Function("f") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            s = compute("s", [i], A(i) + 1.0, A(i))
        assert f.get_compute("s") is s
        with pytest.raises(KeyError):
            f.get_compute("t")


class TestComputeValidation:
    def test_undeclared_iterator_rejected(self):
        with Function("f"):
            i = var("i", 0, 4)
            j = var("j", 0, 4)
            A = placeholder("A", (4, 4))
            with pytest.raises(ValueError):
                compute("s", [i], A(i, j) + 1.0, A(i, j))

    def test_rangeless_iterator_rejected(self):
        with Function("f"):
            i = var("i")
            A = placeholder("A", (4,))
            with pytest.raises(TypeError):
                compute("s", [i], A(i) + 1.0, A(i))

    def test_duplicate_iterators_rejected(self):
        with Function("f"):
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            with pytest.raises(ValueError):
                compute("s", [i, i], A(i) + 1.0, A(i))

    def test_dest_must_be_access(self):
        with Function("f"):
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            with pytest.raises(TypeError):
                compute("s", [i], A(i) + 1.0, i)


class TestSchedulingPrimitives:
    @pytest.fixture()
    def gemm(self):
        with Function("gemm") as f:
            i = var("i", 0, 8)
            j = var("j", 0, 8)
            k = var("k", 0, 8)
            A = placeholder("A", (8, 8))
            B = placeholder("B", (8, 8))
            C = placeholder("C", (8, 8))
            s = compute("s", [k, i, j], A(i, j) + B(i, k) * C(k, j), A(i, j))
        return f, s, (i, j, k)

    def test_tile_records_directive(self, gemm):
        f, s, (i, j, k) = gemm
        s.tile(i, j, 4, 4, var("i0"), var("j0"), var("i1"), var("j1"))
        (d,) = f.schedule.directives
        assert isinstance(d, Tile)
        assert (d.i, d.j, d.ti, d.tj) == ("i", "j", 4, 4)

    def test_chaining(self, gemm):
        f, s, (i, j, k) = gemm
        s.split(i, 4, "i0", "i1").pipeline("i0").unroll("i1", 4)
        kinds = [type(d) for d in f.schedule]
        assert kinds == [Split, Pipeline, Unroll]

    def test_string_or_var_levels(self, gemm):
        f, s, (i, j, k) = gemm
        s.pipeline(j, 2)
        s.pipeline("j", 2)
        assert f.schedule.directives[0] == f.schedule.directives[1]

    def test_invalid_factors_rejected(self, gemm):
        _, s, (i, j, k) = gemm
        with pytest.raises(ValueError):
            s.split(i, 1, "a", "b")
        with pytest.raises(ValueError):
            s.pipeline(j, 0)
        with pytest.raises(ValueError):
            s.unroll(j, -1)
        with pytest.raises(ValueError):
            s.skew(i, j, 0, "ip", "jp")

    def test_reset_schedule(self, gemm):
        f, s, (i, j, k) = gemm
        s.pipeline(j)
        f.reset_schedule()
        assert len(f.schedule) == 0

    def test_schedule_filters(self, gemm):
        f, s, (i, j, k) = gemm
        s.interchange(k, i)
        s.pipeline(j)
        assert len(f.schedule.loop_transforms()) == 1
        assert len(f.schedule.hardware_opts()) == 1
        assert len(f.schedule.for_compute("s")) == 2


class TestReferenceExecution:
    def test_gemm_matches_numpy(self):
        N = 8
        with Function("gemm") as f:
            i = var("i", 0, N)
            j = var("j", 0, N)
            k = var("k", 0, N)
            A = placeholder("A", (N, N))
            B = placeholder("B", (N, N))
            C = placeholder("C", (N, N))
            compute("s", [k, i, j], A(i, j) + B(i, k) * C(k, j), A(i, j))
        arrays = f.allocate_arrays(seed=7)
        ref = {n: a.copy() for n, a in arrays.items()}
        f.reference_execute(arrays)
        want = ref["A"] + ref["B"] @ ref["C"]
        assert np.allclose(arrays["A"], want, rtol=1e-4)

    def test_stencil_sequential_semantics(self):
        """Seidel-style in-place update must see freshly-written values."""
        N = 6
        with Function("seq") as f:
            i = var("i", 1, N - 1)
            A = placeholder("A", (N,), float32)
            compute("s", [i], (A(i - 1) + A(i + 1)) / 2.0, A(i))
        arrays = f.allocate_arrays(seed=3)
        got = {n: a.copy() for n, a in arrays.items()}
        f.reference_execute(got)
        want = arrays["A"].copy()
        for ii in range(1, N - 1):
            want[ii] = (want[ii - 1] + want[ii + 1]) / np.float32(2.0)
        assert np.allclose(got["A"], want)

    def test_two_computes_run_in_order(self):
        N = 4
        with Function("pair") as f:
            i = var("i", 0, N)
            A = placeholder("A", (N,))
            B = placeholder("B", (N,))
            C = placeholder("C", (N,))
            compute("p", [i], A(i) + 1.0, B(i))
            compute("c", [i], B(i) * 2.0, C(i))
        arrays = f.allocate_arrays(seed=5)
        ref_a = arrays["A"].copy()
        f.reference_execute(arrays)
        assert np.allclose(arrays["C"], (ref_a + 1.0) * 2.0)
