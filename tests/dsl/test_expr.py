"""Unit tests for the DSL expression AST."""

import math

import pytest

from repro.dsl import float32, int32, placeholder, var
from repro.dsl.expr import (
    Access,
    BinaryOp,
    Call,
    Cast,
    Const,
    IterRef,
    maximum,
    minimum,
    to_affine,
    wrap,
)
from repro.isl.affine import AffineExpr


class TestWrap:
    def test_wrap_int(self):
        assert isinstance(wrap(3), Const)

    def test_wrap_float(self):
        assert wrap(2.5).value == 2.5

    def test_wrap_passthrough(self):
        e = IterRef("i")
        assert wrap(e) is e

    def test_wrap_rejects_junk(self):
        with pytest.raises(TypeError):
            wrap("not an expr")


class TestOperators:
    def test_add_builds_tree(self):
        e = IterRef("i") + 1
        assert isinstance(e, BinaryOp)
        assert e.op == "+"

    def test_reflected_ops(self):
        assert (1 + IterRef("i")).op == "+"
        assert (1 - IterRef("i")).op == "-"
        assert (2 * IterRef("i")).op == "*"
        assert (2 / IterRef("i")).op == "/"

    def test_neg_is_zero_minus(self):
        e = -IterRef("i")
        assert e.op == "-"
        assert isinstance(e.lhs, Const) and e.lhs.value == 0

    def test_unsupported_op_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("^", Const(1), Const(2))


class TestEvaluation:
    def test_arith(self):
        e = (IterRef("i") + 2) * IterRef("j") - 1
        assert e.evaluate({"i": 3, "j": 4}, {}) == 19

    def test_int_division_truncates_toward_zero(self):
        e = BinaryOp("/", Const(-7), Const(2))
        assert e.evaluate({}, {}) == -3  # C semantics, not Python's -4

    def test_int_mod_sign_follows_dividend(self):
        e = BinaryOp("%", Const(-7), Const(2))
        assert e.evaluate({}, {}) == -1

    def test_float_division(self):
        e = BinaryOp("/", Const(7.0), Const(2))
        assert e.evaluate({}, {}) == 3.5

    def test_calls(self):
        assert minimum(IterRef("i"), 5).evaluate({"i": 9}, {}) == 5
        assert maximum(IterRef("i"), 5).evaluate({"i": 9}, {}) == 9
        assert Call("abs", [Const(-3)]).evaluate({}, {}) == 3
        assert Call("sqrt", [Const(9.0)]).evaluate({}, {}) == 3.0
        assert Call("relu", [Const(-2.0)]).evaluate({}, {}) == 0.0
        assert Call("relu", [Const(2.0)]).evaluate({}, {}) == 2.0

    def test_exp_log(self):
        assert math.isclose(Call("exp", [Const(1.0)]).evaluate({}, {}), math.e)
        assert math.isclose(Call("log", [Const(math.e)]).evaluate({}, {}), 1.0)

    def test_unknown_call_rejected(self):
        with pytest.raises(ValueError):
            Call("sinh", [Const(1.0)])

    def test_cast(self):
        assert Cast(int32, Const(2.7)).evaluate({}, {}) == 2
        assert Cast(float32, Const(2)).evaluate({}, {}) == 2.0


class TestAccess:
    def test_subscript_and_call_syntax(self):
        A = placeholder("A", (4, 4))
        i, j = var("i", 0, 4), var("j", 0, 4)
        assert isinstance(A[i, j], Access)
        assert isinstance(A(i, j), Access)

    def test_rank_checked(self):
        A = placeholder("A", (4, 4))
        i = var("i", 0, 4)
        with pytest.raises(ValueError):
            A[i]

    def test_evaluate_reads_array(self):
        import numpy as np

        A = placeholder("A", (4,))
        data = {"A": np.arange(4.0)}
        e = A[IterRef("i")] * 2
        assert e.evaluate({"i": 3}, data) == 6.0

    def test_loads_collects_all_accesses(self):
        A = placeholder("A", (4,))
        B = placeholder("B", (4,))
        i = var("i", 0, 4)
        e = A[i] + B[i] * A[i]
        names = [a.array_name for a in e.loads()]
        assert names == ["A", "B", "A"]

    def test_iter_names_in_order(self):
        A = placeholder("A", (4, 4))
        i, j = var("i", 0, 4), var("j", 0, 4)
        assert (A[j, i] + i).iter_names() == ["j", "i"]

    def test_substitute_iters(self):
        A = placeholder("A", (8,))
        i = IterRef("i")
        e = A[i + 1]
        s = e.substitute_iters({"i": IterRef("i0") * 4 + IterRef("i1")})
        import numpy as np

        assert s.evaluate({"i0": 1, "i1": 2}, {"A": np.arange(10.0)}) == 7


class TestToAffine:
    def test_simple_cases(self):
        assert to_affine(IterRef("i")) == AffineExpr.var("i")
        assert to_affine(Const(3)) == AffineExpr.const(3)

    def test_linear_combo(self):
        e = IterRef("i") * 2 + IterRef("j") - 1
        a = to_affine(e)
        assert a == AffineExpr({"i": 2, "j": 1}, -1)

    def test_const_times_iter(self):
        assert to_affine(2 * IterRef("i")) == AffineExpr({"i": 2})

    def test_nonaffine_rejected(self):
        with pytest.raises(ValueError):
            to_affine(IterRef("i") * IterRef("j"))
        with pytest.raises(ValueError):
            to_affine(BinaryOp("/", IterRef("i"), Const(2)))
        with pytest.raises(ValueError):
            to_affine(Const(1.5))

    def test_access_map(self):
        A = placeholder("A", (8, 8))
        i, j = IterRef("i"), IterRef("j")
        access = A[i + 1, j * 2]
        m = access.access_map(["i", "j"])
        assert m.apply({"i": 0, "j": 3}) == (1, 6)
