"""Functional interpreter tests: the transformation-correctness oracle."""

import numpy as np
import pytest

from repro.dsl import Function, compute, int32, placeholder, var
from repro.dsl.expr import Call
from repro.affine import interpret
from repro.pipeline import lower_to_affine
from repro.workloads import image, polybench, stencils


def check_semantics(function, seed=0, atol=1e-5):
    """Lowered-IR execution must match the DSL reference semantics."""
    arrays = function.allocate_arrays(seed=seed)
    ref = {n: a.copy() for n, a in arrays.items()}
    function.reference_execute(ref)
    got = {n: a.copy() for n, a in arrays.items()}
    interpret(lower_to_affine(function), got)
    for name in arrays:
        np.testing.assert_allclose(
            got[name], ref[name], rtol=1e-4, atol=atol, err_msg=name
        )


class TestUntransformedWorkloads:
    @pytest.mark.parametrize("name", list(polybench.SUITE))
    def test_polybench(self, name):
        check_semantics(polybench.SUITE[name](8))

    @pytest.mark.parametrize("name", list(stencils.SUITE))
    def test_stencils(self, name):
        check_semantics(stencils.SUITE[name](8))

    @pytest.mark.parametrize("name", list(image.SUITE))
    def test_image(self, name):
        check_semantics(image.SUITE[name](12))


class TestTransformedPrograms:
    def test_tiled_gemm(self):
        f = polybench.gemm(16)
        f.get_compute("s").tile("i", "j", 4, 4, "i0", "j0", "i1", "j1")
        check_semantics(f)

    def test_interchanged_gemm(self):
        f = polybench.gemm(8)
        f.get_compute("s").interchange("k", "j")
        check_semantics(f)

    def test_split_ragged(self):
        with Function("rag") as f:
            i = var("i", 0, 10)
            A = placeholder("A", (10,))
            s = compute("s", [i], A(i) + 1.0, A(i))
        s.split("i", 4, "i0", "i1")
        check_semantics(f)

    def test_skewed_seidel(self):
        f = stencils.seidel(8, steps=2)
        f.get_compute("S").skew("i", "j", 1, "iw", "jw")
        f.get_compute("S").interchange("iw", "jw")
        check_semantics(f)

    def test_fused_pair(self):
        f = polybench.bicg(8)
        f.get_compute("Ss").after(f.get_compute("Sq"), "j")
        check_semantics(f)

    def test_transform_stack(self):
        f = polybench.gemm(16)
        s = f.get_compute("s")
        s.interchange("k", "i")
        s.split("j", 4, "j0", "j1")
        s.tile("i", "k", 2, 4, "it", "kt", "iu", "ku")
        check_semantics(f)


class TestScalarOps:
    def test_integer_arithmetic(self):
        with Function("ints") as f:
            i = var("i", 0, 6)
            A = placeholder("A", (6,), int32)
            B = placeholder("B", (6,), int32)
            compute("s", [i], A(i) * 3 - 2, B(i))
        arrays = {"A": np.arange(6, dtype=np.int32), "B": np.zeros(6, dtype=np.int32)}
        interpret(lower_to_affine(f), arrays)
        assert list(arrays["B"]) == [3 * v - 2 for v in range(6)]

    def test_intrinsics(self):
        with Function("calls") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            B = placeholder("B", (4,))
            compute("s", [i], Call("max", [A(i), 0.0]), B(i))
        arrays = {
            "A": np.array([-1.0, 2.0, -3.0, 4.0], dtype=np.float32),
            "B": np.zeros(4, dtype=np.float32),
        }
        interpret(lower_to_affine(f), arrays)
        assert list(arrays["B"]) == [0.0, 2.0, 0.0, 4.0]

    def test_missing_buffer_rejected(self):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        with pytest.raises(KeyError):
            interpret(func, {"A": np.zeros((4, 4), dtype=np.float32)})
