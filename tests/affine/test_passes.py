"""Unit tests for the affine pass infrastructure and canonicalization."""

import numpy as np
import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.affine import interpret
from repro.affine.ir import AffineForOp, AffineIfOp, AffineStoreOp, ConstantOp, FuncOp
from repro.affine.passes import (
    DropDeadAnnotations,
    DropEmptyLoops,
    FoldConstantGuards,
    Pass,
    PassError,
    PassManager,
    PromoteTripOneLoops,
    VerifyStructure,
    canonicalize,
    default_pipeline,
)
from repro.isl.constraint import Constraint
from repro.isl.sets import LoopBound
from repro.isl.affine import AffineExpr
from repro.pipeline import lower_to_affine
from repro.workloads import polybench

e = AffineExpr


def unit_tiled_gemm():
    """GEMM tiled with unit factors: produces trip-1 loops to clean up."""
    f = polybench.gemm(8)
    f.get_compute("s").tile("i", "j", 1, 4, "i0", "j0", "i1", "j1")
    return f, lower_to_affine(f)


class TestPromoteTripOneLoops:
    def test_unit_tile_loops_promoted(self):
        f, func = unit_tiled_gemm()
        before = [l.iterator for l in func.loops()]
        assert "i0" in before  # trip-1 outer tile loop
        changed = PromoteTripOneLoops().run(func)
        assert changed
        after = [l.iterator for l in func.loops()]
        assert "i0" not in after
        assert "j0" in after  # trip-4 loop survives

    def test_promotion_preserves_semantics(self):
        f, func = unit_tiled_gemm()
        arrays = f.allocate_arrays(seed=3)
        want = {k: v.copy() for k, v in arrays.items()}
        interpret(func, want)
        canonicalize(func)
        got = f.allocate_arrays(seed=3)
        interpret(func, got)
        assert np.array_equal(got["A"], want["A"])

    def test_no_change_when_canonical(self):
        f = polybench.gemm(8)
        func = lower_to_affine(f)
        assert not PromoteTripOneLoops().run(func)


class TestFoldConstantGuards:
    def _func_with_guard(self, conditions):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        innermost = func.loops()[-1]
        guard = AffineIfOp(conditions, None)
        guard.body.ops.extend(innermost.body.ops)
        innermost.body.ops[:] = [guard]
        return func

    def test_tautology_removed(self):
        func = self._func_with_guard([Constraint.ge(1, 0)])
        assert FoldConstantGuards().run(func)
        assert not [op for op in func.walk() if isinstance(op, AffineIfOp)]
        assert func.stores()

    def test_contradiction_deletes_region(self):
        func = self._func_with_guard([Constraint.ge(-1, 0)])
        assert FoldConstantGuards().run(func)
        assert not func.stores()

    def test_live_guard_kept(self):
        func = self._func_with_guard([Constraint.ge("j", 2)])
        FoldConstantGuards().run(func)
        guards = [op for op in func.walk() if isinstance(op, AffineIfOp)]
        assert len(guards) == 1

    def test_mixed_conditions_pruned(self):
        func = self._func_with_guard([Constraint.ge(1, 0), Constraint.ge("j", 2)])
        assert FoldConstantGuards().run(func)
        (guard,) = [op for op in func.walk() if isinstance(op, AffineIfOp)]
        assert len(guard.conditions) == 1


class TestDropEmptyLoops:
    def test_empty_loop_removed(self):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        empty = AffineForOp(
            "z",
            [LoopBound(e.const(0), 1, True)],
            [LoopBound(e.const(3), 1, False)],
        )
        func.body.append(empty)
        assert DropEmptyLoops().run(func)
        assert all(l.iterator != "z" for l in func.loops())

    def test_zero_trip_loop_removed(self):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        dead = AffineForOp(
            "z",
            [LoopBound(e.const(5), 1, True)],
            [LoopBound(e.const(3), 1, False)],
        )
        dead.body.append(AffineStoreOp(func.arrays[0], [e.const(0), e.const(0)], ConstantOp(0.0)))
        func.body.append(dead)
        assert DropEmptyLoops().run(func)
        assert all(l.iterator != "z" for l in func.loops())


class TestDropDeadAnnotations:
    def test_unroll_on_trip_one_loop_removed(self):
        f = polybench.gemm(8)
        f.get_compute("s").tile("i", "j", 1, 4, "i0", "j0", "i1", "j1")
        f.get_compute("s").unroll("i0", 2)  # i0 is the unit tile loop
        func = lower_to_affine(f)
        i0 = next(l for l in func.loops() if l.iterator == "i0")
        assert "unroll" in i0.attributes
        assert DropDeadAnnotations().run(func)
        assert "unroll" not in i0.attributes


class TestVerifier:
    def test_valid_program_passes(self):
        f = polybench.gemm(8)
        VerifyStructure().run(lower_to_affine(f))

    def test_shadowed_iterator_rejected(self):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        outer = func.loops()[0]
        clone = AffineForOp(outer.iterator, outer.lowers, outer.uppers)
        clone.body.ops.extend(outer.body.ops)
        outer.body.ops[:] = [clone]
        with pytest.raises(PassError):
            VerifyStructure().run(func)

    def test_unknown_iterator_rejected(self):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        store = func.stores()[0]
        store.indices[0] = e.var("ghost")
        with pytest.raises(PassError):
            VerifyStructure().run(func)

    def test_bad_pipeline_attribute_rejected(self):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        func.loops()[0].attributes["pipeline"] = 0
        with pytest.raises(PassError):
            VerifyStructure().run(func)


class TestPassManager:
    def test_fixed_point_iterates(self):
        """Promoting a trip-1 loop can expose another foldable pattern."""
        f, func = unit_tiled_gemm()
        manager = default_pipeline()
        assert manager.run(func, to_fixed_point=True)
        assert not manager.run(func, to_fixed_point=True)  # already canonical

    def test_add_chains(self):
        manager = PassManager().add(FoldConstantGuards()).add(DropEmptyLoops())
        assert len(manager.passes) == 2

    def test_custom_pass(self):
        class CountLoops(Pass):
            name = "count"

            def __init__(self):
                self.count = 0

            def run(self, func):
                self.count = len(func.loops())
                return False

        counter = CountLoops()
        f = polybench.gemm(4)
        PassManager([counter]).run(lower_to_affine(f))
        assert counter.count == 3

    def test_canonicalize_runs_verifier(self):
        f = polybench.gemm(4)
        func = lower_to_affine(f)
        func.stores()[0].indices[0] = e.var("ghost")
        with pytest.raises(PassError):
            canonicalize(func)


class TestCanonicalizeEndToEnd:
    def test_dse_output_canonicalizes_cleanly(self):
        f = polybench.bicg(32)
        f.auto_DSE()
        func = lower_to_affine(f)
        arrays = f.allocate_arrays(seed=9)
        want = {k: v.copy() for k, v in arrays.items()}
        interpret(func, want)
        canonicalize(func)
        got = f.allocate_arrays(seed=9)
        interpret(func, got)
        for name in got:
            assert np.array_equal(got[name], want[name]), name
