"""Compiled simulator tests: bit-identity with the interpreter.

:func:`repro.affine.compile.simulate` promises results *bit-identical*
to :func:`repro.affine.interp.interpret` -- not merely close.  That
contract is what makes the fuzzer's exact ``np.array_equal`` comparison
sound, so this suite sweeps every workload family (untransformed and
transformed) asserting exact equality, and exercises the compiler's
introspection surface: kernel stats, the interpreter fallback, the
fingerprint cache, and the ``REPRO_SIM_REFERENCE`` escape hatch.
"""

import numpy as np
import pytest

from repro.affine import (
    CompiledKernel,
    compile_func,
    interpret,
    reference_mode,
    set_reference_mode,
    simulate,
)
from repro.affine import compile as _compile
from repro.isl import intern as _intern
from repro.workloads import dnn, image, polybench, polybench_extra, stencils


def check_bit_identity(function, seed=0):
    """Compiled simulation must equal the interpreter bit-for-bit."""
    func = function.lower()
    interpreted = function.allocate_arrays(seed=seed)
    interpret(func, interpreted)
    simulated = function.allocate_arrays(seed=seed)
    simulate(func, simulated)
    for name in interpreted:
        assert np.array_equal(interpreted[name], simulated[name]), name
    return compile_func(func)


class TestWorkloadSweep:
    """Every workload family, exact equality."""

    @pytest.mark.parametrize("name", list(polybench.SUITE))
    def test_polybench(self, name):
        check_bit_identity(polybench.SUITE[name](8))

    @pytest.mark.parametrize("name", list(polybench_extra.EXTRA_SUITE))
    def test_polybench_extra(self, name):
        check_bit_identity(polybench_extra.EXTRA_SUITE[name](8))

    @pytest.mark.parametrize("name", list(stencils.SUITE))
    def test_stencils(self, name):
        check_bit_identity(stencils.SUITE[name](8))

    @pytest.mark.parametrize("name", list(image.SUITE))
    def test_image(self, name):
        check_bit_identity(image.SUITE[name](12))

    @pytest.mark.parametrize("name", list(dnn.SUITE))
    def test_dnn(self, name):
        check_bit_identity(dnn.SUITE[name](4, channel_scale=0.05))


class TestTransformedPrograms:
    def test_tiled_skewed_gemm(self):
        f = polybench.gemm(16)
        s = f.get_compute("s")
        s.tile("i", "j", 4, 4, "i0", "j0", "i1", "j1")
        s.skew("i1", "j1", 1, "i1s", "j1s")
        check_bit_identity(f)

    def test_interchanged_reversed_gemm(self):
        f = polybench.gemm(8)
        s = f.get_compute("s")
        s.interchange("k", "j")
        s.reverse("i", "ir")
        check_bit_identity(f)

    def test_skewed_interchanged_seidel(self):
        f = stencils.seidel(8, steps=2)
        f.get_compute("S").skew("i", "j", 1, "iw", "jw")
        f.get_compute("S").interchange("iw", "jw")
        check_bit_identity(f)


class TestKernelStats:
    def test_gemm_vectorizes(self):
        kernel = check_bit_identity(polybench.gemm(8))
        stats = kernel.stats.as_dict()
        assert stats["fallback"] is None
        assert stats["vector_nests"] >= 1
        # i and j grid; the k reduction stays a scalar loop.
        assert stats["vector_axes"] >= 2
        assert stats["scalar_loops"] >= 1

    def test_seidel_recurrence_stays_scalar(self):
        # Seidel reads neighbours of the array it writes (in place), so
        # read-own-cell fails and the whole band compiles to scalar
        # loops -- but never falls back to the interpreter.
        kernel = check_bit_identity(stencils.seidel(8, steps=2))
        stats = kernel.stats.as_dict()
        assert stats["fallback"] is None
        assert stats["vector_nests"] == 0
        assert stats["scalar_loops"] >= 2

    def test_compiled_source_is_inspectable(self):
        kernel = compile_func(polybench.gemm(8).lower())
        assert "def _kernel(arrays):" in kernel.source
        assert "_np.arange" in kernel.source
        assert "compiled" in repr(kernel)


class TestKernelCache:
    def test_same_fingerprint_compiles_once(self):
        context = _intern.active()
        context.kernel_fns.clear()
        func_a = polybench.gemm(8).lower()
        func_b = polybench.gemm(8).lower()
        kernel_a = compile_func(func_a)
        kernel_b = compile_func(func_b)
        assert kernel_a is kernel_b

    def test_distinct_sizes_distinct_kernels(self):
        assert compile_func(polybench.gemm(8).lower()) is not compile_func(
            polybench.gemm(12).lower()
        )

    def test_cache_lives_on_intern_context(self):
        context = _intern.active()
        context.kernel_fns.clear()
        compile_func(polybench.gemm(8).lower())
        assert len(context.kernel_fns) == 1


class TestInterpreterFallback:
    def test_unsupported_construct_falls_back(self, monkeypatch):
        # Force the builder to reject everything: the kernel must still
        # run, bit-identically, through the interpreter.
        def refuse(self):
            raise _compile.UnsupportedConstruct("forced by test")

        monkeypatch.setattr(_compile._Builder, "build", refuse)
        _intern.active().kernel_fns.clear()
        function = polybench.gemm(8)
        func = function.lower()
        kernel = compile_func(func)
        assert kernel.stats.fallback == "forced by test"
        assert "interpreted" in repr(kernel)
        interpreted = function.allocate_arrays(seed=0)
        interpret(func, interpreted)
        simulated = function.allocate_arrays(seed=0)
        simulate(func, simulated)
        assert all(
            np.array_equal(interpreted[n], simulated[n]) for n in interpreted
        )
        _intern.active().kernel_fns.clear()


class TestReferenceMode:
    def test_toggle_roundtrip(self):
        previous = set_reference_mode(True)
        try:
            assert reference_mode()
            function = polybench.gemm(8)
            func = function.lower()
            interpreted = function.allocate_arrays(seed=0)
            interpret(func, interpreted)
            simulated = function.allocate_arrays(seed=0)
            simulate(func, simulated)  # runs through the interpreter
            assert all(
                np.array_equal(interpreted[n], simulated[n]) for n in interpreted
            )
        finally:
            set_reference_mode(previous)
        assert reference_mode() == previous

    def test_env_variable_is_the_default(self):
        # The module-level default tracks REPRO_SIM_REFERENCE at import;
        # this process was started without it.
        import os

        if os.environ.get("REPRO_SIM_REFERENCE", "") in ("", "0"):
            assert not reference_mode()


class TestSimulateContract:
    def test_missing_buffer_raises(self):
        func = polybench.gemm(8).lower()
        with pytest.raises(KeyError, match="missing buffer"):
            simulate(func, {})

    def test_in_place_update(self):
        function = polybench.gemm(8)
        func = function.lower()
        arrays = function.allocate_arrays(seed=3)
        handles = {name: arr for name, arr in arrays.items()}
        simulate(func, arrays)
        for name in arrays:
            assert arrays[name] is handles[name]

    def test_compiled_kernel_export(self):
        from repro import CompiledKernel as exported

        assert exported is CompiledKernel
