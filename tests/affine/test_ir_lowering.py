"""Unit tests for the affine dialect IR and polyhedral-AST lowering."""

import numpy as np
import pytest

from repro.dsl import Function, compute, float64, int32, placeholder, var
from repro.dsl.expr import Call, Cast, IterRef
from repro.isl.affine import AffineExpr
from repro.isl.sets import LoopBound
from repro.affine import (
    AffineForOp,
    AffineIfOp,
    AffineLoadOp,
    AffineStoreOp,
    ArithOp,
    Block,
    CallOp,
    CastOp,
    ConstantOp,
    FuncOp,
    IndexOp,
    lower_expr,
    lower_program,
    print_func,
)
from repro.polyir import lower_function

e = AffineExpr


def lowered_gemm(n=8, schedule=None):
    with Function("gemm") as f:
        i = var("i", 0, n)
        j = var("j", 0, n)
        k = var("k", 0, n)
        A = placeholder("A", (n, n))
        B = placeholder("B", (n, n))
        C = placeholder("C", (n, n))
        s = compute("s", [k, i, j], A(i, j) + B(i, k) * C(k, j), A(i, j))
    if schedule:
        schedule(s, f)
    return f, lower_program(lower_function(f))


class TestIrStructure:
    def test_func_op_arrays(self):
        f, func = lowered_gemm()
        assert [a.name for a in func.arrays] == ["A", "B", "C"]
        assert func.array("B").shape == (8, 8)
        with pytest.raises(KeyError):
            func.array("Z")

    def test_loop_nest_shape(self):
        _, func = lowered_gemm()
        loops = func.loops()
        assert [l.iterator for l in loops] == ["k", "i", "j"]
        assert all(l.constant_trip_count() == 8 for l in loops)

    def test_store_op(self):
        _, func = lowered_gemm()
        (store,) = func.stores()
        assert store.array.name == "A"
        assert store.statement_name() == "s"
        assert isinstance(store.value, ArithOp)

    def test_walk_covers_all_ops(self):
        _, func = lowered_gemm()
        kinds = {type(op).__name__ for op in func.walk()}
        assert {"FuncOp", "AffineForOp", "AffineStoreOp"} <= kinds

    def test_load_rank_checked(self):
        A = placeholder("Arr", (4, 4))
        with pytest.raises(ValueError):
            AffineLoadOp(A, [e.var("i")])
        with pytest.raises(ValueError):
            AffineStoreOp(A, [e.var("i")], ConstantOp(0))

    def test_for_needs_bounds(self):
        with pytest.raises(ValueError):
            AffineForOp("i", [], [LoopBound(e.const(3), 1, False)])

    def test_if_needs_condition(self):
        with pytest.raises(ValueError):
            AffineIfOp([])


class TestMaxTripCount:
    def test_constant(self):
        loop = AffineForOp(
            "i",
            [LoopBound(e.const(0), 1, True)],
            [LoopBound(e.const(7), 1, False)],
        )
        assert loop.max_trip_count({}) == 8

    def test_parametric_envelope(self):
        # i from jp-3 to jp with jp extent 8 -> worst case 0..7+... envelope
        loop = AffineForOp(
            "i",
            [LoopBound(e.var("jp") - 3, 1, True)],
            [LoopBound(e.var("jp"), 1, False)],
        )
        assert loop.max_trip_count({"jp": 8}) >= 4

    def test_divisor_bounds(self):
        loop = AffineForOp(
            "i",
            [LoopBound(e.const(0), 1, True)],
            [LoopBound(e.const(31), 4, False)],  # floor(31/4) = 7
        )
        assert loop.max_trip_count({}) == 8


class TestExprLowering:
    def test_constant(self):
        assert isinstance(lower_expr(IterRef("i") * 0 + 3), (ConstantOp, IndexOp))

    def test_access_becomes_load(self):
        A = placeholder("AA", (4,))
        op = lower_expr(A[IterRef("i")])
        assert isinstance(op, AffineLoadOp)
        assert op.indices == [e.var("i")]

    def test_iter_arith_folds_to_affine_apply(self):
        op = lower_expr(IterRef("i") * 2 + IterRef("j"))
        assert isinstance(op, IndexOp)
        assert op.expr == e({"i": 2, "j": 1})

    def test_call_and_cast(self):
        A = placeholder("AB", (4,))
        op = lower_expr(Call("max", [A[IterRef("i")], 0.0]))
        assert isinstance(op, CallOp)
        cast = lower_expr(Cast(int32, A[IterRef("i")]))
        assert isinstance(cast, CastOp)
        assert cast.dtype is int32

    def test_nonaffine_mul_stays_arith(self):
        A = placeholder("AC", (4,))
        op = lower_expr(A[IterRef("i")] * A[IterRef("i")])
        assert isinstance(op, ArithOp)
        assert op.kind == "*"


class TestAnnotationsReachIr:
    def test_pipeline_unroll_attributes(self):
        def schedule(s, f):
            s.tile("i", "j", 4, 4, "i0", "j0", "i1", "j1")
            s.pipeline("j0", 2)
            s.unroll("j1", 0)

        _, func = lowered_gemm(schedule=schedule)
        loops = {l.iterator: l for l in func.loops()}
        assert loops["j0"].attributes["pipeline"] == 2
        assert loops["j1"].attributes["unroll"] == 0
        assert "pipeline" not in loops["k"].attributes

    def test_partitions_on_func(self):
        def schedule(s, f):
            for p in f.placeholders():
                p.partition([4, 4], "cyclic")

        _, func = lowered_gemm(schedule=schedule)
        partitions = func.attributes["partitions"]
        assert set(partitions) == {"A", "B", "C"}
        assert partitions["A"].factors == (4, 4)


class TestPrinter:
    def test_prints_structure(self):
        _, func = lowered_gemm()
        text = print_func(func)
        assert "func.func @gemm" in text
        assert "affine.for %k = 0 to 7 + 1" in text
        assert "affine.store" in text
        assert "arith.mulf" in text

    def test_prints_attributes(self):
        def schedule(s, f):
            s.pipeline("j", 1)

        _, func = lowered_gemm(schedule=schedule)
        assert "{pipeline = 1}" in print_func(func)

    def test_prints_guard(self):
        with Function("g") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            B = placeholder("B", (4,))
            s1 = compute("s1", [i], A(i) * 2.0, A(i))
        with Function("g2") as f2:
            i2 = var("i", 0, 4)
            B2 = placeholder("B2", (4,))
            s2 = compute("s2", [i2], B2(i2) + 1.0, B2(i2))
        # fuse differently-sized statements to force a guard
        with Function("g3") as f3:
            i = var("i", 0, 8)
            j = var("j", 0, 4)
            A = placeholder("A3", (8,))
            B = placeholder("B3", (4,))
            sa = compute("sa", [i], A(i) * 2.0, A(i))
            sb = compute("sb", [j], B(j) + 1.0, B(j))
        sb.after(sa, "i")
        func = lower_program(lower_function(f3))
        text = print_func(func)
        assert "affine.if" in text


class TestDoublePrecision:
    def test_float64_function_lowers_and_runs(self):
        from repro.affine import interpret

        with Function("d") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,), float64)
            compute("s", [i], A(i) * 2.0 + 1.0, A(i))
        func = lower_program(lower_function(f))
        arrays = {"A": np.ones(4, dtype=np.float64)}
        interpret(func, arrays)
        assert np.allclose(arrays["A"], 3.0)
