"""Round-trip tests: print_func -> parse_func -> identical behaviour."""

import numpy as np
import pytest

from repro.affine import interpret, print_func
from repro.affine.parser import ParseError, parse_func
from repro.pipeline import lower_to_affine
from repro.workloads import image, polybench, stencils


def roundtrip(function):
    """Parse the printed form and check text + behavioural equivalence."""
    original = lower_to_affine(function)
    text = print_func(original)
    reparsed = parse_func(text)
    assert print_func(reparsed) == text  # textual fixed point

    arrays = function.allocate_arrays(seed=23)
    want = {k: v.copy() for k, v in arrays.items()}
    interpret(original, want)
    got = {k: v.copy() for k, v in arrays.items()}
    interpret(reparsed, got)
    for name in arrays:
        np.testing.assert_array_equal(got[name], want[name], err_msg=name)
    return reparsed


class TestRoundTrip:
    def test_plain_gemm(self):
        roundtrip(polybench.gemm(8))

    def test_scheduled_gemm(self):
        f = polybench.gemm(16)
        s = f.get_compute("s")
        s.tile("i", "j", 4, 4, "i0", "j0", "i1", "j1")
        s.pipeline("j0", 1)
        s.unroll("j1", 0)
        for p in f.placeholders():
            p.partition([4, 4], "cyclic")
        func = roundtrip(f)
        loops = {l.iterator: l for l in func.loops()}
        assert loops["j0"].attributes["pipeline"] == 1
        assert loops["j1"].attributes["unroll"] == 0
        assert func.attributes["partitions"]["A"].factors == (4, 4)

    def test_dse_bicg(self):
        f = polybench.bicg(32)
        f.auto_DSE()
        roundtrip(f)

    def test_skewed_stencil_bounds(self):
        """Triangular (max/min, ceildiv/floordiv) bounds survive parsing."""
        f = stencils.seidel(8, steps=2)
        f.auto_DSE()
        func = roundtrip(f)
        assert any(
            len(l.lowers) > 1 or len(l.uppers) > 1
            or any(b.divisor > 1 for b in l.lowers + l.uppers)
            for l in func.loops()
        )

    def test_guarded_fusion(self):
        from repro.dsl import Function, compute, placeholder, var

        with Function("g") as f:
            i = var("i", 0, 8)
            j = var("j", 0, 4)
            A = placeholder("A", (8,))
            B = placeholder("B", (4,))
            sa = compute("sa", [i], A(i) * 2.0, A(i))
            sb = compute("sb", [j], B(j) + 1.0, B(j))
        sb.after(sa, "i")
        roundtrip(f)

    def test_multi_statement_image_app(self):
        roundtrip(image.blur(8))

    def test_intrinsics_and_constants(self):
        from repro.dsl import Function, compute, placeholder, var
        from repro.dsl.expr import Call

        with Function("c") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            compute("s", [i], Call("max", [A(i) * 0.5, 0.0]), A(i))
        roundtrip(f)

    def test_parsed_arrays_reconstructed(self):
        func = parse_func(print_func(lower_to_affine(polybench.gemm(8))))
        assert [a.name for a in func.arrays] == ["A", "B", "C"]
        assert func.arrays[0].shape == (8, 8)
        assert func.arrays[0].dtype.name == "float32"


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_func("")

    def test_bad_header(self):
        with pytest.raises(ParseError):
            parse_func("function gemm() {\n}")

    def test_unbalanced(self):
        text = print_func(lower_to_affine(polybench.gemm(4)))
        with pytest.raises(ParseError):
            parse_func(text.rsplit("}", 1)[0])

    def test_undeclared_array(self):
        text = (
            "func.func @f(%A: memref<4xfloat32>) {\n"
            "  affine.store 1.0, %B[0]\n"
            "}"
        )
        with pytest.raises(ParseError):
            parse_func(text)

    def test_garbage_line(self):
        text = (
            "func.func @f(%A: memref<4xfloat32>) {\n"
            "  vector.splat %A\n"
            "}"
        )
        with pytest.raises(ParseError):
            parse_func(text)


class TestParserFuzz:
    """Property: print -> parse -> print is a fixed point under random
    schedules (reusing the random-schedule strategy of the integration
    suite)."""

    def test_random_schedules_roundtrip(self):
        from hypothesis import given, settings

        from tests.integration.test_property_schedules import (
            apply_ops,
            make_elementwise,
            schedules,
        )

        @given(schedules(["i", "j"]))
        @settings(max_examples=30, deadline=None)
        def check(ops):
            f, s = make_elementwise()
            apply_ops(s, ops)
            func = lower_to_affine(f)
            text = print_func(func)
            assert print_func(parse_func(text)) == text

        check()
