"""Interpreter corner cases: C arithmetic semantics, casts, calls, guards.

The interpreter is the transformation-correctness oracle *and* the
semantic contract the compiled simulator (:mod:`repro.affine.compile`)
must match bit-for-bit, so its scalar helpers get exact-value tests
here: C's truncating integer ``/`` and ``%`` (Python's ``//`` floors),
float remainder computed at the operands' width (``fmodf``, not
``fmod``-through-f64), and math intrinsics that preserve numpy scalar
dtypes instead of silently promoting to Python ``float``.
"""

import math

import numpy as np
import pytest

from repro.affine import (
    AffineForOp,
    AffineIfOp,
    AffineLoadOp,
    AffineStoreOp,
    ArithOp,
    Block,
    CallOp,
    CastOp,
    ConstantOp,
    FuncOp,
    IndexOp,
    interpret,
)
from repro.affine.interp import _CALLS, c_div, c_mod
from repro.dsl import float32, int32, placeholder
from repro.isl.affine import AffineExpr
from repro.isl.constraint import EQ, GE, Constraint
from repro.isl.sets import LoopBound

e = AffineExpr


class TestCDivision:
    """Integer ``/`` truncates toward zero -- C99, not Python ``//``."""

    @pytest.mark.parametrize(
        "lhs,rhs,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (6, 3, 2), (0, 5, 0)],
    )
    def test_truncates_toward_zero(self, lhs, rhs, expected):
        assert c_div(lhs, rhs) == expected
        # Python's floor division disagrees on every mixed-sign case.
        if (lhs >= 0) != (rhs >= 0) and lhs % rhs != 0:
            assert lhs // rhs != expected

    def test_numpy_integer_operands(self):
        assert c_div(np.int32(-7), np.int32(2)) == -3
        assert c_div(np.int32(-7), 2) == -3
        assert c_div(7, np.int64(-2)) == -3

    def test_float_operand_promotes_to_true_division(self):
        assert c_div(7.0, 2) == 3.5
        assert c_div(7, 2.0) == 3.5

    def test_float32_division_stays_float32(self):
        out = c_div(np.float32(1.0), 3)
        assert out.dtype == np.float32
        assert out == np.float32(1.0) / np.float32(3)


class TestCRemainder:
    """``%`` takes the dividend's sign for ints; floats use fmod."""

    @pytest.mark.parametrize(
        "lhs,rhs,expected",
        [(7, 2, 1), (-7, 2, -1), (7, -2, 1), (-7, -2, -1), (6, 3, 0)],
    )
    def test_integer_sign_of_dividend(self, lhs, rhs, expected):
        assert c_mod(lhs, rhs) == expected
        # Identity C guarantees: (a/b)*b + a%b == a.
        assert c_div(lhs, rhs) * rhs + c_mod(lhs, rhs) == lhs

    def test_float_remainder_is_fmod(self):
        assert c_mod(-5.5, 2.0) == math.fmod(-5.5, 2.0) == -1.5
        assert c_mod(5.5, -2.0) == math.fmod(5.5, -2.0) == 1.5

    def test_float32_remainder_stays_float32(self):
        lhs, rhs = np.float32(5.1), np.float32(0.7)
        out = c_mod(lhs, rhs)
        # np.fmod keeps the operands' dtype; math.fmod would return a
        # Python float whose strong f64 identity poisons any buffer it
        # is stored into before numpy truncates it back.
        assert isinstance(out, np.float32)
        assert out == np.fmod(lhs, rhs)


class TestIntrinsicDtypes:
    """Math intrinsics must not promote numpy scalars to Python float."""

    @pytest.mark.parametrize("name", ["sqrt", "exp", "log"])
    def test_float32_preserved(self, name):
        out = _CALLS[name](np.float32(2.0))
        assert isinstance(out, np.float32)

    @pytest.mark.parametrize("name", ["sqrt", "exp", "log"])
    def test_python_float_stays_python(self, name):
        out = _CALLS[name](2.0)
        assert type(out) is float
        assert out == getattr(math, name)(2.0)

    def test_relu_preserves_type(self):
        assert isinstance(_CALLS["relu"](np.float32(-2.0)), np.float32)
        assert _CALLS["relu"](np.float32(-2.0)) == 0
        assert _CALLS["relu"](np.float32(3.0)) == np.float32(3.0)
        out = _CALLS["relu"](np.int32(-1))
        assert isinstance(out, np.int32) and out == 0
        assert type(_CALLS["relu"](-1.5)) is float

    def test_sqrt_f32_differs_from_f64_rounding(self):
        value = np.float32(2.0)
        f32 = _CALLS["sqrt"](value)
        assert f32 == np.sqrt(value)
        assert float(f32) != math.sqrt(float(value))


def _loop(iterator, lo, hi, body_ops):
    return AffineForOp(
        iterator,
        [LoopBound(e.const(lo), 1, True)],
        [LoopBound(e.const(hi), 1, False)],
        Block(body_ops),
    )


class TestCastOpInterp:
    def test_float_to_int_truncates_toward_zero(self):
        A = placeholder("A", (4,))
        B = placeholder("B", (4,), int32)
        store = AffineStoreOp(
            B, [e.var("i")], CastOp(int32, AffineLoadOp(A, [e.var("i")]))
        )
        func = FuncOp("cast", [A, B], Block([_loop("i", 0, 3, [store])]))
        arrays = {
            "A": np.array([2.7, -2.7, 0.5, -0.5], dtype=np.float32),
            "B": np.zeros(4, dtype=np.int32),
        }
        interpret(func, arrays)
        assert arrays["B"].tolist() == [2, -2, 0, 0]

    def test_int_to_float32_rounds_at_width(self):
        A = placeholder("A", (1,), int32)
        B = placeholder("B", (1,), float32)
        store = AffineStoreOp(
            B, [e.var("i")], CastOp(float32, AffineLoadOp(A, [e.var("i")]))
        )
        func = FuncOp("cast", [A, B], Block([_loop("i", 0, 0, [store])]))
        arrays = {
            "A": np.array([2**24 + 1], dtype=np.int32),  # not representable in f32
            "B": np.zeros(1, dtype=np.float32),
        }
        interpret(func, arrays)
        assert arrays["B"][0] == np.float32(2**24 + 1)
        assert float(arrays["B"][0]) != float(2**24 + 1)  # rounded to 2**24


class TestCallOpInterp:
    def test_variadic_min_max(self):
        A = placeholder("A", (3,))
        B = placeholder("B", (1,))
        loads = [AffineLoadOp(A, [e.const(k)]) for k in range(3)]
        func = FuncOp(
            "mm",
            [A, B],
            Block([AffineStoreOp(B, [e.const(0)], CallOp("min", list(loads)))]),
        )
        arrays = {
            "A": np.array([3.0, 1.0, 2.0], dtype=np.float32),
            "B": np.zeros(1, dtype=np.float32),
        }
        interpret(func, arrays)
        assert arrays["B"][0] == 1.0

    def test_max_with_weak_zero_keeps_f32(self):
        # max(f32_load, 0.0) is the relu idiom the image suite lowers to;
        # the Python 0.0 literal must not promote the result to f64.
        A = placeholder("A", (2,))
        B = placeholder("B", (2,))
        store = AffineStoreOp(
            B,
            [e.var("i")],
            CallOp("max", [AffineLoadOp(A, [e.var("i")]), ConstantOp(0.0)]),
        )
        func = FuncOp("relu", [A, B], Block([_loop("i", 0, 1, [store])]))
        arrays = {
            "A": np.array([-1.5, 2.5], dtype=np.float32),
            "B": np.zeros(2, dtype=np.float32),
        }
        interpret(func, arrays)
        assert arrays["B"].tolist() == [0.0, 2.5]


class TestAffineIfInterp:
    def test_ge_guard_masks_iterations(self):
        A = placeholder("A", (6,))
        guarded = AffineIfOp(
            [Constraint(e.var("i") - 2, GE)],  # i >= 2
            Block([AffineStoreOp(A, [e.var("i")], ConstantOp(1.0))]),
        )
        func = FuncOp("guard", [A], Block([_loop("i", 0, 5, [guarded])]))
        arrays = {"A": np.zeros(6, dtype=np.float32)}
        interpret(func, arrays)
        assert arrays["A"].tolist() == [0, 0, 1, 1, 1, 1]

    def test_eq_guard_selects_single_point(self):
        A = placeholder("A", (5,))
        guarded = AffineIfOp(
            [Constraint(e.var("i") - 3, EQ)],
            Block([AffineStoreOp(A, [e.var("i")], ConstantOp(7.0))]),
        )
        func = FuncOp("guard", [A], Block([_loop("i", 0, 4, [guarded])]))
        arrays = {"A": np.zeros(5, dtype=np.float32)}
        interpret(func, arrays)
        assert arrays["A"].tolist() == [0, 0, 0, 7, 0]

    def test_conjunction_of_guards(self):
        A = placeholder("A", (6,))
        guarded = AffineIfOp(
            [Constraint(e.var("i") - 1, GE), Constraint(e.const(4) - e.var("i"), GE)],
            Block([AffineStoreOp(A, [e.var("i")], ConstantOp(1.0))]),
        )
        func = FuncOp("guard", [A], Block([_loop("i", 0, 5, [guarded])]))
        arrays = {"A": np.zeros(6, dtype=np.float32)}
        interpret(func, arrays)
        assert arrays["A"].tolist() == [0, 1, 1, 1, 1, 0]


class TestArithThroughInterp:
    """End-to-end: ArithOp / and % dispatch to the C helpers."""

    def test_integer_div_mod_on_negative_values(self):
        A = placeholder("A", (4,), int32)
        Q = placeholder("Q", (4,), int32)
        R = placeholder("R", (4,), int32)
        load = AffineLoadOp(A, [e.var("i")])
        two = ConstantOp(2)
        body = [
            AffineStoreOp(Q, [e.var("i")], ArithOp("/", load, two)),
            AffineStoreOp(R, [e.var("i")], ArithOp("%", load, two)),
        ]
        func = FuncOp("dm", [A, Q, R], Block([_loop("i", 0, 3, body)]))
        arrays = {
            "A": np.array([7, -7, 5, -5], dtype=np.int32),
            "Q": np.zeros(4, dtype=np.int32),
            "R": np.zeros(4, dtype=np.int32),
        }
        interpret(func, arrays)
        assert arrays["Q"].tolist() == [3, -3, 2, -2]
        assert arrays["R"].tolist() == [1, -1, 1, -1]

    def test_index_op_scaled_subscript(self):
        A = placeholder("A", (8,))
        B = placeholder("B", (4,))
        store = AffineStoreOp(
            B, [e.var("i")], AffineLoadOp(A, [e({"i": 2})])
        )
        func = FuncOp("stride", [A, B], Block([_loop("i", 0, 3, [store])]))
        arrays = {
            "A": np.arange(8, dtype=np.float32),
            "B": np.zeros(4, dtype=np.float32),
        }
        interpret(func, arrays)
        assert arrays["B"].tolist() == [0, 2, 4, 6]

    def test_index_value_stays_weak_python_int(self):
        # A bare IndexOp in value position: f32 = f32 * i must stay f32
        # (a strong int64 scalar would promote the product to f64).
        A = placeholder("A", (4,))
        store = AffineStoreOp(
            A,
            [e.var("i")],
            ArithOp("*", AffineLoadOp(A, [e.var("i")]), IndexOp(e.var("i"))),
        )
        func = FuncOp("idx", [A], Block([_loop("i", 0, 3, [store])]))
        arrays = {"A": np.full(4, 0.1, dtype=np.float32)}
        interpret(func, arrays)
        expected = np.float32(0.1) * np.arange(4, dtype=np.float32)
        assert arrays["A"].tolist() == expected.tolist()

    def test_missing_buffer_raises(self):
        A = placeholder("A", (2,))
        func = FuncOp("m", [A], Block([]))
        with pytest.raises(KeyError, match="missing buffer"):
            interpret(func, {})
