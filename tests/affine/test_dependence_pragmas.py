"""Unit tests for the automatic HLS DEPENDENCE pragma hints."""

import pytest

from repro.affine.passes import InsertDependencePragmas
from repro.pipeline import compile_to_hls_c, lower_to_affine
from repro.workloads import polybench


class TestInsertDependencePragmas:
    def test_bicg_pom_design_gets_false_hints(self):
        """After split-interchange, q/s carry nothing at the pipeline level."""
        f = polybench.bicg(64)
        f.auto_DSE()
        func = lower_to_affine(f)
        assert InsertDependencePragmas().run(func)
        hints = []
        for loop in func.loops():
            hints.extend(loop.attributes.get("dependence", []))
        assert "variable=q inter false" in hints
        assert "variable=s inter false" in hints

    def test_true_dependence_gets_no_false_hint(self):
        """Pipelining the reduction itself must NOT claim independence."""
        f = polybench.gemm(16)
        s = f.get_compute("s")
        s.interchange("k", "j")  # k innermost
        s.pipeline("k", 1)
        func = lower_to_affine(f)
        InsertDependencePragmas().run(func)
        for loop in func.loops():
            for hint in loop.attributes.get("dependence", []):
                assert "variable=A" not in hint

    def test_read_only_arrays_skipped(self):
        f = polybench.gemm(16)
        f.get_compute("s").pipeline("j", 1)
        func = lower_to_affine(f)
        InsertDependencePragmas().run(func)
        for loop in func.loops():
            for hint in loop.attributes.get("dependence", []):
                assert "variable=B" not in hint
                assert "variable=C" not in hint

    def test_idempotent(self):
        f = polybench.bicg(32)
        f.auto_DSE()
        func = lower_to_affine(f)
        InsertDependencePragmas().run(func)
        assert not InsertDependencePragmas().run(func)

    def test_pragma_reaches_hls_c(self):
        f = polybench.bicg(64)
        f.auto_DSE()
        code = compile_to_hls_c(f)
        assert "#pragma HLS dependence variable=q inter false" in code

    def test_no_pipeline_no_hints(self):
        f = polybench.gemm(8)
        func = lower_to_affine(f)
        assert not InsertDependencePragmas().run(func)
