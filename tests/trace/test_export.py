"""Exporter tests: Chrome trace_event JSON, text profile, metrics."""

import json

from repro.trace import (
    Tracer,
    chrome_trace_events,
    export_chrome_trace,
    export_metrics_json,
    load_chrome_trace,
    render_metrics,
    render_text_profile,
    span_categories,
)


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("compile", "pipeline", args={"workload": "gemm"}):
        with tracer.span("lower", "affine"):
            pass
        with tracer.span("lower", "affine"):
            pass
        with tracer.span("estimate", "hls"):
            tracer.count("hls.estimate_calls")
            tracer.observe("dse.retry_backoff_s", 0.1)
    return tracer


class TestChromeTrace:
    def test_event_structure(self):
        events = chrome_trace_events(_sample_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta[0]["name"] == "thread_name"
        assert meta[0]["args"]["name"] == "main"
        assert len(complete) == 4
        root = complete[0]
        assert root["name"] == "compile"
        assert root["cat"] == "pipeline"
        assert root["args"]["workload"] == "gemm"
        assert "cpu_ms" in root["args"]
        # microsecond timestamps, declaration order
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        assert [e["name"] for e in complete] == [
            "compile", "lower", "lower", "estimate",
        ]

    def test_adopted_tracks_get_metadata_events(self):
        worker = Tracer()
        with worker.span("w", "dse"):
            pass
        driver = _sample_tracer()
        driver.adopt_thread(worker.export_data(), 3, "shard bicg")
        events = chrome_trace_events(driver)
        names = {
            e["tid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {0: "main", 3: "shard bicg"}
        assert any(e["ph"] == "X" and e["tid"] == 3 for e in events)

    def test_export_is_valid_json(self, tmp_path):
        path = tmp_path / "out.json"
        export_chrome_trace(_sample_tracer(), str(path))
        payload = load_chrome_trace(str(path))
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        metrics = payload["otherData"]["metrics"]
        assert metrics["counters"]["hls.estimate_calls"] == 1
        assert metrics["histograms"]["dse.retry_backoff_s"]["count"] == 1

    def test_span_categories_helper(self, tmp_path):
        path = tmp_path / "out.json"
        export_chrome_trace(_sample_tracer(), str(path))
        counts = span_categories(load_chrome_trace(str(path)))
        assert counts == {"pipeline": 1, "affine": 2, "hls": 1}


class TestTextViews:
    def test_profile_collapses_repeated_spans(self):
        profile = render_text_profile(_sample_tracer())
        assert profile.startswith("trace profile")
        lines = [l for l in profile.splitlines() if "lower [affine]" in l]
        assert len(lines) == 1       # two calls collapse to one aggregate
        assert lines[0].split()[2] == "2"  # calls column

    def test_profile_indents_children(self):
        profile = render_text_profile(_sample_tracer())
        compile_line = next(
            l for l in profile.splitlines() if l.startswith("compile")
        )
        child_line = next(l for l in profile.splitlines() if "estimate" in l)
        assert child_line.startswith("  ")
        assert not compile_line.startswith(" ")

    def test_min_fraction_prunes(self):
        tracer = Tracer()
        with tracer.span("big"):
            pass
        tracer.spans[0].dur = 1.0
        with tracer.span("tiny"):
            pass
        tracer.spans[1].dur = 1e-6
        pruned = render_text_profile(tracer, min_fraction=0.01)
        assert "big" in pruned
        assert "tiny" not in pruned

    def test_render_metrics(self):
        text = render_metrics(_sample_tracer())
        assert "hls.estimate_calls" in text
        assert "dse.retry_backoff_s" in text
        assert "n=1" in text

    def test_render_metrics_empty(self):
        assert "(no metrics recorded)" in render_metrics(Tracer())

    def test_export_metrics_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        export_metrics_json(_sample_tracer(), str(path))
        data = json.loads(path.read_text())
        assert data["counters"]["hls.estimate_calls"] == 1
