"""Unit tests for the span/metrics core (repro.trace.core)."""

import pickle

import pytest

from repro import trace
from repro.trace import MetricsRegistry, TraceData, Tracer


class TestSpans:
    def test_nesting_by_parent_index(self):
        tracer = Tracer()
        with tracer.span("outer", "a"):
            with tracer.span("inner", "b"):
                pass
            with tracer.span("inner2", "b"):
                pass
        names = [s.name for s in tracer.spans]
        assert names == ["outer", "inner", "inner2"]
        assert tracer.spans[0].parent == -1
        assert tracer.spans[1].parent == 0
        assert tracer.spans[2].parent == 0

    def test_declaration_order_is_open_order(self):
        # A span's index is assigned when it opens, not when it closes.
        tracer = Tracer()
        with tracer.span("first"):
            with tracer.span("second"):
                pass
        assert [s.name for s in tracer.spans] == ["first", "second"]

    def test_duration_and_args_filled(self):
        tracer = Tracer()
        with tracer.span("work", "cat", args={"k": 1}) as span:
            pass
        assert span.dur >= 0.0
        assert span.cpu >= 0.0
        assert span.args == {"k": 1}
        assert span.category == "cat"

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("outer"):
            assert tracer.current_span().name == "outer"
            with tracer.span("inner"):
                assert tracer.current_span().name == "inner"
            assert tracer.current_span().name == "outer"
        assert tracer.current_span() is None

    def test_stack_recovers_from_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current_span() is None
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent == -1

    def test_span_tuple_round_trip(self):
        tracer = Tracer()
        with tracer.span("s", "c", args={"x": 2}):
            pass
        span = tracer.spans[0]
        clone = type(span).from_tuple(span.as_tuple())
        assert clone.as_tuple() == span.as_tuple()


class TestGlobalHelpers:
    def test_disabled_path_is_shared_noop(self):
        assert trace.active() is None
        assert not trace.enabled()
        # The disabled span() must return one shared object, never allocate.
        handle1 = trace.span("x")
        handle2 = trace.span("y", "cat", args={"big": 1})
        assert handle1 is handle2
        with handle1 as span:
            assert span is None
        trace.count("nope")       # all silently dropped
        trace.observe("nope", 1.0)

    def test_tracing_scope_installs_and_restores(self):
        assert trace.active() is None
        with trace.tracing() as tracer:
            assert trace.active() is tracer
            assert trace.enabled()
            with trace.span("s", "c"):
                trace.count("hits", 2)
                trace.observe("lat", 0.5)
        assert trace.active() is None
        assert [s.name for s in tracer.spans] == ["s"]
        assert tracer.metrics.value("hits") == 2
        assert tracer.metrics.histograms["lat"].count == 1

    def test_nested_scopes_restore_previous(self):
        with trace.tracing() as outer:
            with trace.tracing() as inner:
                assert trace.active() is inner
            assert trace.active() is outer

    def test_install_returns_previous(self):
        tracer = Tracer()
        previous = trace.install(tracer)
        try:
            assert previous is None
            assert trace.active() is tracer
        finally:
            trace.install(previous)
        assert trace.active() is None


class TestCrossProcess:
    def _worker_data(self):
        worker = Tracer()
        with worker.span("root", "w"):
            with worker.span("leaf", "w"):
                worker.count("work", 3)
                worker.observe("t", 0.25)
        return worker.export_data()

    def test_export_data_pickles(self):
        data = self._worker_data()
        clone = pickle.loads(pickle.dumps(data))
        assert isinstance(clone, TraceData)
        assert clone.spans == data.spans
        assert clone.counters == data.counters
        assert clone.histograms == data.histograms

    def test_graft_nests_under_current_span(self):
        driver = Tracer()
        with driver.span("driver", "d"):
            driver.graft(self._worker_data())
        names = {s.name: s for s in driver.spans}
        assert names["root"].parent == 0          # under "driver"
        assert names["leaf"].parent == driver.spans.index(names["root"])
        assert driver.metrics.value("work") == 3
        # grafted spans are rebased into the driver's timeline
        assert names["root"].ts >= 0.0

    def test_adopt_thread_assigns_track(self):
        driver = Tracer()
        driver.adopt_thread(self._worker_data(), 1, "shard gemm")
        assert driver.thread_names == {1: "shard gemm"}
        assert all(s.tid == 1 for s in driver.spans)
        # adopted roots stay roots: not children of any driver span
        assert driver.spans[0].parent == -1

    def test_graft_order_is_deterministic(self):
        def merged():
            driver = Tracer()
            for tid, label in ((1, "a"), (2, "b")):
                driver.adopt_thread(self._worker_data(), tid, label)
            return [(s.name, s.tid) for s in driver.spans]

        assert merged() == merged()
        assert merged() == [("root", 1), ("leaf", 1), ("root", 2), ("leaf", 2)]

    def test_graft_empty_data_is_noop(self):
        driver = Tracer()
        driver.graft(TraceData([], {}, []))
        assert driver.spans == []
        assert driver.metrics.counters == {}


class TestMetricsRegistry:
    def test_count_and_value(self):
        registry = MetricsRegistry()
        assert registry.value("c") == 0
        registry.count("c")
        registry.count("c", 4)
        assert registry.value("c") == 5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        h = registry.histograms["h"]
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_merge_sums_counters_and_merges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("c", 1)
        b.count("c", 2)
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        a.merge(b)
        assert a.value("c") == 3
        assert a.histograms["h"].count == 2
        assert a.histograms["h"].max == 5.0

    def test_plain_round_trip(self):
        a = MetricsRegistry()
        a.count("c", 2)
        a.observe("h", 1.5)
        counters, histograms = a.as_plain()
        b = MetricsRegistry()
        b.merge_plain(counters, histograms)
        assert b.as_dict() == a.as_dict()
