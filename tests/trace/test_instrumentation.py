"""Instrumentation coverage: spans and metrics from every pipeline layer.

The acceptance bar for the tracing subsystem is that one traced DSE run
produces spans from at least five pipeline layers (schedule application,
polyhedral transforms, isl, affine lowering/passes, HLS estimation, the
DSE engine itself) and that the DSE metrics mirror the authoritative
:class:`~repro.dse.stats.DseStats` counters exactly.
"""

import pytest

from repro import trace
from repro.dse import auto_dse
from repro.trace import span_categories
from repro.workloads import polybench


@pytest.fixture(scope="module")
def traced_dse():
    # An off-pattern size: the DSE caches and the isl memo tables are
    # process-global, and a size shared with other test modules would
    # arrive warm here and skip the instrumented work this module
    # asserts on.
    function = polybench.gemm(20)
    with trace.tracing() as tracer:
        result = auto_dse(function)
    return tracer, result


def _categories(tracer):
    counts = {}
    for span in tracer.spans:
        counts[span.category] = counts.get(span.category, 0) + 1
    return counts


class TestSpanCoverage:
    def test_at_least_five_pipeline_layers(self, traced_dse):
        tracer, _ = traced_dse
        categories = set(_categories(tracer))
        expected = {"schedule", "polyir", "isl", "affine", "hls", "dse"}
        assert len(categories & expected) >= 5, categories

    def test_dse_engine_spans(self, traced_dse):
        tracer, _ = traced_dse
        names = {s.name for s in tracer.spans}
        assert "dse.auto_dse" in names
        assert "dse.stage1" in names
        assert "dse.candidate" in names
        assert "dse.finalize" in names

    def test_sweep_root_carries_workload_fingerprint(self, traced_dse):
        tracer, result = traced_dse
        root = next(s for s in tracer.spans if s.name == "dse.auto_dse")
        assert root.args["function"] == result.function.name
        # The sweep root identifies *which* search space the trace
        # profiles -- the same structural digest checkpoints use.
        assert len(root.args["fingerprint"]) > 0

    def test_candidate_spans_carry_search_args(self, traced_dse):
        tracer, _ = traced_dse
        candidates = [s for s in tracer.spans if s.name == "dse.candidate"]
        assert candidates
        args = candidates[0].args
        assert "ordinal" in args
        assert "parallelism" in args

    def test_pass_spans_carry_op_counts(self):
        # The pass pipeline runs in the codegen path (canonicalization
        # before HLS C emission), not inside the DSE inner loop.
        with trace.tracing() as tracer:
            polybench.gemm(16).codegen()
        passes = [s for s in tracer.spans if s.name.startswith("pass.")]
        assert passes
        for span in passes:
            assert span.category == "affine"
            assert span.args["ops_after"] - span.args["ops_before"] == (
                span.args["ops_delta"]
            )

    def test_hls_spans_label_memoization(self, traced_dse):
        tracer, _ = traced_dse
        estimates = [s for s in tracer.spans if s.name == "hls.estimate"]
        assert estimates
        assert {s.args["memo"] for s in estimates} <= {"hit", "miss"}

    def test_spans_nest_under_the_sweep_root(self, traced_dse):
        tracer, _ = traced_dse
        root = next(s for s in tracer.spans if s.name == "dse.auto_dse")
        assert root.parent == -1
        # Every other span transitively reaches the sweep root.
        index = tracer.spans.index(root)
        for span in tracer.spans:
            ancestor = span
            while ancestor.parent >= 0:
                ancestor = tracer.spans[ancestor.parent]
            assert tracer.spans.index(ancestor) == index


class TestMetricParity:
    def test_dse_metrics_mirror_stats(self, traced_dse):
        tracer, result = traced_dse
        metrics = tracer.metrics
        stats = result.stats
        assert metrics.value("dse.evaluations") == stats.evaluations
        assert metrics.value("dse.estimations") == stats.estimations
        assert metrics.value("dse.cache.evaluation.hits") == stats.eval_cache_hits
        assert (
            metrics.value("dse.cache.evaluation.misses")
            == stats.eval_cache_misses
        )

    def test_hot_loop_counters_recorded(self, traced_dse):
        tracer, _ = traced_dse
        assert tracer.metrics.value("hls.estimate_calls") > 0
        assert tracer.metrics.value("isl.fm_eliminations") > 0
        assert tracer.metrics.value("isl.ast_nodes") > 0
        assert tracer.metrics.value("polyir.directives_applied") > 0

    def test_compile_only_trace_has_no_dse_spans(self):
        function = polybench.gemm(16)
        with trace.tracing() as tracer:
            function.lower()
            function.estimate()
        categories = set(_categories(tracer))
        assert "dse" not in categories
        assert {"isl", "affine", "hls"} <= categories


class TestChromeRoundTrip:
    def test_exported_trace_preserves_categories(self, traced_dse, tmp_path):
        from repro.trace import export_chrome_trace, load_chrome_trace

        tracer, _ = traced_dse
        path = tmp_path / "dse.json"
        export_chrome_trace(tracer, str(path))
        counts = span_categories(load_chrome_trace(str(path)))
        assert counts == _categories(tracer)
