"""Tracing is observational only: results are bit-identical on or off.

Every sweep mode (sequential, uncached, fault-injected, speculative,
sharded) is run twice -- once under an active tracer, once without --
and the search outcomes are compared field for field.  This is the
contract that lets the instrumentation live in the hot loops
permanently.
"""

import pytest

from repro import trace
from repro.dse import DseOptions, auto_dse, default_sweep_specs, run_sharded_sweep
from repro.faults import Fault, FaultPlan
from repro.workloads import polybench


def _outcome(result):
    return (
        result.report,
        result.tile_vectors(),
        result.evaluations,
        result.parallelism,
        result.degraded,
        len(result.quarantine),
    )


def _run_pair(make_options):
    untraced = auto_dse(polybench.gemm(16), options=make_options())
    with trace.tracing() as tracer:
        traced = auto_dse(polybench.gemm(16), options=make_options())
    assert tracer.spans, "tracer recorded nothing"
    return untraced, traced


class TestSingleSweepIdentity:
    def test_sequential(self):
        untraced, traced = _run_pair(DseOptions)
        assert _outcome(untraced) == _outcome(traced)

    def test_uncached(self):
        untraced, traced = _run_pair(lambda: DseOptions(cache=False))
        assert _outcome(untraced) == _outcome(traced)

    def test_seeded_fault_plan(self):
        def options():
            return DseOptions(
                fault_plan=FaultPlan([Fault("transient", 2, count=2)])
            )

        untraced, traced = _run_pair(options)
        assert _outcome(untraced) == _outcome(traced)
        assert untraced.stats.estimator_retries == traced.stats.estimator_retries

    def test_random_fault_plan(self):
        def options():
            return DseOptions(
                fault_plan=FaultPlan.random(
                    seed=11, candidates=12, kinds=("transient", "permanent")
                ),
                candidate_timeout_s=30.0,
            )

        untraced, traced = _run_pair(options)
        assert _outcome(untraced) == _outcome(traced)
        assert untraced.stats.quarantined == traced.stats.quarantined

    @pytest.mark.parallel
    def test_speculative(self):
        untraced, traced = _run_pair(lambda: DseOptions(jobs=2))
        assert _outcome(untraced) == _outcome(traced)


@pytest.mark.parallel
class TestShardedSweepIdentity:
    def _sweep(self):
        return run_sharded_sweep(default_sweep_specs(size=16), jobs=2)

    def test_sharded_results_identical(self):
        untraced = self._sweep()
        with trace.tracing() as tracer:
            traced = self._sweep()
        assert untraced.ok and traced.ok
        for a, b in zip(untraced.shards, traced.shards):
            assert a.spec.label == b.spec.label
            assert _outcome(a.result) == _outcome(b.result)
        assert untraced.stats.evaluations == traced.stats.evaluations

    def test_worker_tracks_merge_deterministically(self):
        with trace.tracing() as first:
            self._sweep()
        with trace.tracing() as second:
            self._sweep()
        labels = [first.thread_names[tid] for tid in sorted(first.thread_names)]
        assert labels == [
            f"shard {spec.label}" for spec in default_sweep_specs(size=16)
        ]
        assert first.thread_names == second.thread_names
        # Same sweep, same declaration order: the merged span sequence
        # has identical names/categories/tracks across runs.
        key = lambda t: [(s.name, s.category, s.tid) for s in t.spans]
        assert key(first) == key(second)

    def test_merged_stats_are_sum_of_shards(self):
        with trace.tracing():
            sweep = self._sweep()
        assert sweep.stats.evaluations == sum(
            shard.result.stats.evaluations for shard in sweep.shards
        )
        assert sweep.stats.estimations == sum(
            shard.result.stats.estimations for shard in sweep.shards
        )
