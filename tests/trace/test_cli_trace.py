"""CLI contract for the unified run flags and the tracing surface.

Asserts the flag-unification invariants promised in ``docs/api.md``:
``--jobs/--checkpoint/--stats/--trace`` spell and document identically
across ``repro dse``, ``repro verify``, ``repro trace``, and
``report_all``; the pre-unification spellings still parse but warn and
are hidden from ``--help``.
"""

import argparse
import re

import pytest

from repro.cli import (
    CHECKPOINT_HELP,
    JOBS_HELP,
    STATS_HELP,
    TRACE_HELP,
    build_parser,
    main,
)
from repro.trace import load_chrome_trace, span_categories

pytestmark = pytest.mark.parallel


def _subparser(name):
    parser = build_parser()
    subparsers = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return subparsers.choices[name]


class TestFlagUnification:
    def test_canonical_flags_document_identically(self):
        for command in ("dse", "trace"):
            help_text = _subparser(command).format_help()
            assert "--jobs" in help_text, command
            assert JOBS_HELP.split(";")[0] in " ".join(help_text.split()), command
        for command in ("dse", "verify"):
            help_text = " ".join(_subparser(command).format_help().split())
            assert STATS_HELP in help_text, command
            assert TRACE_HELP in help_text, command
        assert CHECKPOINT_HELP.split(";")[0] in " ".join(
            _subparser("dse").format_help().split()
        )

    def test_deprecated_aliases_hidden_from_help(self):
        for command in ("dse", "verify", "trace"):
            help_text = _subparser(command).format_help()
            for alias in ("--parallel", "--journal", "--profile", "--trace-out"):
                assert alias not in help_text, (command, alias)

    def test_aliases_parse_to_canonical_dests_and_warn(self):
        parser = build_parser()
        with pytest.warns(DeprecationWarning, match="--parallel.*--jobs"):
            args = parser.parse_args(["dse", "gemm", "--parallel", "2"])
        assert args.jobs == 2
        with pytest.warns(DeprecationWarning, match="--journal.*--checkpoint"):
            args = parser.parse_args(["dse", "gemm", "--journal", "j.jsonl"])
        assert args.checkpoint == "j.jsonl"
        with pytest.warns(DeprecationWarning, match="--profile.*--stats"):
            args = parser.parse_args(["dse", "gemm", "--profile"])
        assert args.stats is True
        with pytest.warns(DeprecationWarning, match="--trace-out.*--trace"):
            args = parser.parse_args(["verify", "gemm", "--trace-out", "t.json"])
        assert args.trace == "t.json"

    def test_canonical_flags_do_not_warn(self, recwarn):
        args = build_parser().parse_args(
            ["dse", "gemm", "--jobs", "2", "--checkpoint", "j", "--stats",
             "--trace", "t.json"]
        )
        assert args.jobs == 2 and args.stats and args.trace == "t.json"
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestDseTraceFlag:
    def test_dse_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "dse.json"
        rc = main(["dse", "gemm", "--size", "16", "--trace", str(out)])
        assert rc == 0
        assert f"trace written to {out}" in capsys.readouterr().err
        payload = load_chrome_trace(str(out))
        categories = set(span_categories(payload))
        assert len(categories & {
            "schedule", "polyir", "isl", "affine", "hls", "dse",
        }) >= 5, categories
        assert payload["otherData"]["metrics"]["counters"]["dse.evaluations"] > 0

    def test_unwritable_trace_degrades_to_trc001(self, tmp_path, capsys):
        out = tmp_path / "no" / "such" / "dir" / "t.json"
        rc = main(["dse", "gemm", "--size", "16", "--trace", str(out)])
        assert rc == 0                      # the run itself still succeeds
        assert "TRC001" in capsys.readouterr().err

    def test_sharded_stats_show_per_shard_breakdown(self, capsys):
        rc = main(["dse", "--all", "--size", "16", "--jobs", "2", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        shard_evals = [
            int(m) for m in re.findall(r"evaluations\s+(\d+)", out)
        ]
        # one block per shard plus the merged block, merged == sum
        assert len(shard_evals) == 5
        assert "merged (totals are the sum of the shards above):" in out
        assert shard_evals[-1] == sum(shard_evals[:-1])
        for label in ("gemm(16)", "bicg(16)"):
            assert f"shard {label}:" in out

    def test_sharded_trace_merges_worker_tracks(self, tmp_path, capsys):
        out = tmp_path / "all.json"
        rc = main([
            "dse", "--all", "--size", "16", "--jobs", "2", "--trace", str(out),
        ])
        assert rc == 0
        payload = load_chrome_trace(str(out))
        names = sorted(
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M"
        )
        assert "main" in names
        assert sum(1 for n in names if n.startswith("shard ")) == 4


class TestTraceSubcommand:
    def test_prints_profile_and_metrics(self, capsys):
        rc = main(["trace", "gemm", "--size", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace profile" in out
        assert "trace metrics" in out
        assert "affine.lower_program" in out

    def test_dse_mode_with_export(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        rc = main([
            "trace", "gemm", "--size", "16", "--dse", "--trace", str(out_path),
        ])
        assert rc == 0
        assert "dse.auto_dse" in capsys.readouterr().out
        assert set(span_categories(load_chrome_trace(str(out_path))))


class TestVerifyTraceFlags:
    def test_stats_prints_profile(self, capsys):
        rc = main(["verify", "gemm", "--size", "16", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace profile" in out

    def test_trace_exports(self, tmp_path, capsys):
        out_path = tmp_path / "v.json"
        rc = main(["verify", "gemm", "--size", "16", "--trace", str(out_path)])
        assert rc == 0
        assert load_chrome_trace(str(out_path))["traceEvents"]
