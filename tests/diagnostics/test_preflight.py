"""Fuzz-ish negative suite: every directive against an incompatible nest.

Each case asserts a *diagnostic* with the right error code -- never a
traceback -- and that legal schedules sail through with no errors.
"""

import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.dsl.schedule import Interchange
from repro.preflight import preflight_function
from repro.workloads.stencils import heat_1d, seidel

pytestmark = pytest.mark.diagnostics


def codes(function):
    return [d.code for d in preflight_function(function)]


def error_codes(function):
    return [d.code for d in preflight_function(function).errors()]


def producer_consumer(read_offset: int):
    """P writes B[i]; C reads B[i + read_offset]."""
    with Function("pc") as f:
        i = var("i", 0, 13)
        A = placeholder("A", (16,))
        B = placeholder("B", (16,))
        C = placeholder("C", (16,))
        P = compute("P", [i], A(i) * 2.0, B(i))
        Cc = compute("C", [i], B(i + read_offset) + 1.0, C(i))
    return f, P, Cc


class TestDependenceLegality:
    def test_interchange_across_carried_dependence(self):
        # The acceptance-criterion case: seidel-2d carries dependences at
        # t; hoisting j above t reverses them.
        f = seidel(8, 2)
        f.get_compute("S").interchange("t", "j")
        engine = preflight_function(f)
        errors = engine.errors()
        assert errors and all(d.code == "LEG001" for d in errors)
        # The diagnostic names the violated dependence, not just the loops.
        assert any("carried at t" in d.message for d in errors)
        assert any("A" in d.message for d in errors)

    def test_legal_interchange_passes(self):
        f = seidel(8, 2)
        f.get_compute("S").interchange("i", "j")
        assert error_codes(f) == []

    def test_tile_of_non_permutable_band(self):
        f = seidel(8, 2)
        f.get_compute("S").tile("t", "i", 2, 2, "t0", "i0", "t1", "i1")
        assert error_codes(f) and set(error_codes(f)) == {"LEG001"}

    def test_legal_tile_passes(self):
        f = seidel(8, 2)
        f.get_compute("S").tile("i", "j", 2, 2, "i0", "j0", "i1", "j1")
        assert error_codes(f) == []

    def test_reverse_of_carrying_loop(self):
        f = seidel(8, 2)
        f.get_compute("S").reverse("t", "tr")
        assert error_codes(f) and set(error_codes(f)) == {"LEG002"}

    def test_illegal_skew(self):
        # Skewing the outer time loop by -2 * i flips carried distances.
        f = heat_1d(8, 2)
        f.get_compute("S").skew("i", "t", -2, "ip", "tp")
        assert error_codes(f) and set(error_codes(f)) == {"LEG003"}

    def test_legal_skew_passes(self):
        # The classic stencil skew: inner loop by the outer time loop.
        f = seidel(8, 2)
        f.get_compute("S").skew("t", "j", 1, "tp", "jp")
        assert error_codes(f) == []

    def test_fusion_reading_ahead(self):
        f, P, Cc = producer_consumer(read_offset=1)
        Cc.fuse(P, "i")
        engine = preflight_function(f)
        errors = engine.errors()
        assert errors and all(d.code == "LEG004" for d in errors)
        assert any("B" in d.message for d in errors)

    def test_fusion_of_aligned_accesses_passes(self):
        f, P, Cc = producer_consumer(read_offset=0)
        Cc.fuse(P, "i")
        assert error_codes(f) == []

    def test_pipeline_across_carried_dependence_warns(self):
        f = seidel(8, 2)
        f.get_compute("S").pipeline("t")
        engine = preflight_function(f)
        assert not engine.has_errors, "pipelining is legal, merely slow"
        assert engine.warnings()
        assert all(d.code == "LEG005" for d in engine.warnings())

    def test_shift_always_legal(self):
        f = seidel(8, 2)
        f.get_compute("S").shift("i", 1, "is")
        assert error_codes(f) == []


class TestStructuralChecks:
    def test_unknown_compute(self):
        f = seidel(8, 2)
        f.schedule.add(Interchange("nope", "t", "j"))
        engine = preflight_function(f)
        assert [d.code for d in engine.errors()] == ["SCH002"]
        assert "'nope'" in engine.errors()[0].message

    def test_unknown_loop(self):
        f = seidel(8, 2)
        f.get_compute("S").interchange("t", "zz")
        engine = preflight_function(f)
        assert [d.code for d in engine.errors()] == ["SCH003"]
        # The message lists the loops that do exist.
        assert "t, i, j" in engine.errors()[0].message

    def test_new_name_collision(self):
        f = seidel(8, 2)
        f.get_compute("S").split("j", 4, "i", "j1")
        assert error_codes(f) == ["SCH004"]

    def test_unapplicable_directive_reported_not_raised(self):
        # Tile of non-adjacent loops passes the dependence check but
        # cannot be applied; the preflight reports SCH005, no traceback.
        f = seidel(8, 2)
        f.get_compute("S").tile("t", "j", 2, 2, "t0", "j0", "t1", "j1")
        assert "SCH005" in error_codes(f)

    def test_bad_directive_does_not_cascade(self):
        # A rejected directive is skipped; a later legal one still checks
        # against the untransformed nest instead of compounding errors.
        f = seidel(8, 2)
        S = f.get_compute("S")
        S.interchange("t", "zz")
        S.pipeline("j")
        engine = preflight_function(f)
        assert [d.code for d in engine.errors()] == ["SCH003"]

    def test_directive_location_threaded_from_dsl_call(self):
        f = seidel(8, 2)
        f.get_compute("S").interchange("t", "j")
        engine = preflight_function(f)
        loc = engine.errors()[0].location
        assert loc is not None
        assert loc.file is not None and loc.file.endswith("test_preflight.py")
        assert loc.function == "seidel" and loc.compute == "S"
