"""The `repro verify` subcommand: diagnostics on stdout, exit code 1 on errors."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.diagnostics


def test_verify_clean_workload(capsys):
    rc = main(["verify", "seidel"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no diagnostics" in out


def test_verify_illegal_schedule(tmp_path, capsys):
    schedule = {
        "function": "seidel",
        "directives": [
            {"kind": "Interchange", "compute_name": "S", "i": "t", "j": "j"}
        ],
        "partitions": {},
    }
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(schedule))
    rc = main(["verify", "seidel", "--load-schedule", str(path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "LEG001" in out
    assert "carried" in out  # names the violated dependence
    assert "Traceback" not in out


def test_verify_with_size(capsys):
    assert main(["verify", "gemm", "--size", "8"]) == 0
