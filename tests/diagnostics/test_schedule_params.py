"""Directive parameter errors: structured, named, and still ValueErrors."""

import pytest

from repro.diagnostics import DiagnosticError
from repro.dsl.schedule import (
    Pipeline,
    ScheduleError,
    Shift,
    Skew,
    Split,
    Tile,
    Unroll,
)

pytestmark = pytest.mark.diagnostics


@pytest.mark.parametrize(
    "build, loop_name",
    [
        (lambda: Split("s", "i", 1, "i0", "i1"), "i"),
        (lambda: Tile("s", "i", "j", 0, 4, "i0", "j0", "i1", "j1"), "i"),
        (lambda: Skew("s", "i", "j", 0, "ip", "jp"), "j"),
        (lambda: Shift("s", "i", 0, "ip"), "i"),
        (lambda: Pipeline("s", "k", 0), "k"),
        (lambda: Unroll("s", "k", -1), "k"),
    ],
)
def test_parameter_errors_name_compute_and_loop(build, loop_name):
    with pytest.raises(ScheduleError) as info:
        build()
    assert info.value.code == "SCH001"
    message = str(info.value)
    assert "'s'" in message, "message must name the compute"
    assert f"'{loop_name}'" in message, "message must name the loop"


def test_schedule_error_is_value_error():
    # Legacy handlers catching ValueError keep working.
    assert issubclass(ScheduleError, DiagnosticError)
    with pytest.raises(ValueError):
        Split("s", "i", 0, "i0", "i1")
