"""Fault-tolerant DSE: quarantine, retries, preflight, graceful degradation."""

import pytest

import repro.dse.engine as engine_mod
from repro.diagnostics import DiagnosticError
from repro.hls.estimator import HlsEstimator, TransientEstimatorError
from repro.workloads import polybench
from repro.workloads.stencils import seidel
from repro.dse.options import DseOptions

pytestmark = pytest.mark.diagnostics


def test_illegal_existing_schedule_rejected_at_preflight():
    # Acceptance criterion: an interchange across seidel-2d's loop-carried
    # dependence is rejected before any lowering, with a diagnostic that
    # names the dependence.
    f = seidel(8, 2)
    f.get_compute("S").interchange("t", "j")
    with pytest.raises(DiagnosticError) as info:
        f.auto_DSE(options=DseOptions(keep_existing_schedule=True))
    assert info.value.code == "LEG001"
    assert "carried" in str(info.value) and "A" in str(info.value)


def test_failing_candidates_are_quarantined_not_fatal(monkeypatch):
    # Sabotage every degree-4 node config: the search must complete,
    # quarantine the failures, and return the best design reachable
    # without them -- identical to an honest search capped at degree 2.
    original = engine_mod.plan_node_config

    def sabotaged(function, plan, name, degree, program=None):
        if degree >= 4:
            raise RuntimeError("synthetic failure at degree 4")
        return original(function, plan, name, degree, program=program)

    monkeypatch.setattr(engine_mod, "plan_node_config", sabotaged)
    result = polybench.gemm(16).auto_DSE()

    assert result.quarantine, "failed candidates must be recorded"
    assert result.stats.quarantined == len(result.quarantine)
    for candidate in result.quarantine:
        diagnostic = candidate.diagnostic
        assert diagnostic.code == "DSE001"
        assert "synthetic failure" in diagnostic.message
        assert any(degree >= 4 for degree in candidate.parallelism.values())
    assert any(d.code == "DSE001" for d in result.diagnostics)

    monkeypatch.setattr(engine_mod, "plan_node_config", original)
    capped = polybench.gemm(16).auto_DSE(options=DseOptions(max_parallelism=2))
    assert result.report.total_cycles == capped.report.total_cycles


def test_transient_estimator_failures_are_retried(monkeypatch):
    baseline = polybench.gemm(16).auto_DSE()

    original = HlsEstimator.estimate
    state = {"remaining": 2}

    def flaky(self, func_op):
        if state["remaining"] > 0:
            state["remaining"] -= 1
            raise TransientEstimatorError("licence hiccup")
        return original(self, func_op)

    monkeypatch.setattr(HlsEstimator, "estimate", flaky)
    result = polybench.gemm(16).auto_DSE()

    assert result.stats.estimator_retries == 2
    assert not result.quarantine
    assert result.report.total_cycles == baseline.report.total_cycles


def test_persistent_estimator_failure_becomes_dse002(monkeypatch):
    def dead(self, func_op):
        raise TransientEstimatorError("licence server down")

    monkeypatch.setattr(HlsEstimator, "estimate", dead)
    # Even the degree-1 baseline fails: there is no legal design to
    # degrade to, so the error surfaces -- as a diagnostic, not a
    # TransientEstimatorError traceback.
    with pytest.raises(DiagnosticError) as info:
        polybench.gemm(16).auto_DSE()
    assert info.value.code == "DSE002"
    assert "licence server down" in str(info.value)


def test_quarantine_counts_reported_in_stats_summary(monkeypatch):
    original = engine_mod.plan_node_config

    def sabotaged(function, plan, name, degree, program=None):
        if degree >= 4:
            raise RuntimeError("synthetic failure")
        return original(function, plan, name, degree, program=program)

    monkeypatch.setattr(engine_mod, "plan_node_config", sabotaged)
    result = polybench.gemm(16).auto_DSE()
    summary = result.stats.summary()
    assert "quarantined" in summary
    assert f"quarantined        {result.stats.quarantined}" in summary
