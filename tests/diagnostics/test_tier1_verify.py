"""Every seed workload must pass the verifier and legality preflight.

This wires the verification subsystem into the tier-1 run: the default
lowering path (`Function.lower` / `lower_to_affine`) verifies its output,
and this sweep additionally checks the preflight on every workload's
as-shipped schedule.
"""

import inspect

import pytest

from repro.affine.passes import verify_func
from repro.preflight import preflight_function
from repro.workloads import ALL_SUITES

pytestmark = pytest.mark.diagnostics


def _small(factory):
    params = inspect.signature(factory).parameters
    first = next(iter(params.values()), None)
    if first is not None and first.name in ("n", "size"):
        return factory(8)
    return factory()


ALL_WORKLOADS = [
    pytest.param(factory, id=f"{suite_name}/{name}")
    for suite_name, suite in ALL_SUITES.items()
    for name, factory in suite.items()
]


@pytest.mark.parametrize("factory", ALL_WORKLOADS)
def test_workload_passes_preflight_and_verifier(factory):
    function = _small(factory)

    preflight = preflight_function(function)
    assert not preflight.has_errors, preflight.render()

    # lower() verifies by default; verify_func again explicitly so a
    # regression in the default wiring cannot mask a broken lowering.
    func = function.lower()
    engine = verify_func(func)
    assert not engine.has_errors, engine.render()
