"""Every seed workload must pass the verifier and legality preflight.

This wires the verification subsystem into the tier-1 run: the default
lowering path (`Function.lower` / `lower_to_affine`) verifies its output,
and this sweep additionally checks the preflight on every workload's
as-shipped schedule.
"""

import pytest

from repro import workloads
from repro.affine.passes import verify_func
from repro.preflight import preflight_function

pytestmark = pytest.mark.diagnostics


def _small(name):
    try:
        return workloads.get(name, 8)
    except TypeError:  # builder takes no size parameter
        return workloads.get(name)


@pytest.mark.parametrize("name", workloads.names(kind="function"))
def test_workload_passes_preflight_and_verifier(name):
    function = _small(name)

    preflight = preflight_function(function)
    assert not preflight.has_errors, preflight.render()

    # lower() verifies by default; verify_func again explicitly so a
    # regression in the default wiring cannot mask a broken lowering.
    func = function.lower()
    engine = verify_func(func)
    assert not engine.has_errors, engine.render()


@pytest.mark.parametrize("name", workloads.names(kind="dataflow"))
def test_dataflow_workload_passes_verify(name):
    design = _small(name)
    engine = design.verify()
    assert not engine.has_errors, engine.render()
