"""Unit tests for the affine IR structural verifier, one per invariant."""

import pytest

from repro.affine.ir import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    Block,
    ConstantOp,
    FuncOp,
)
from repro.affine.passes import Pass, PassError, PassManager, verify_func
from repro.diagnostics import DiagnosticError
from repro.dsl.placeholder import PartitionScheme, Placeholder
from repro.hlsgen.codegen import generate_hls_c
from repro.isl.affine import AffineExpr
from repro.isl.sets import LoopBound
from repro.pipeline import lower_to_affine
from repro.workloads import polybench

pytestmark = pytest.mark.diagnostics

e = AffineExpr


def loop(iterator: str, lo: int, hi: int) -> AffineForOp:
    return AffineForOp(
        iterator,
        [LoopBound(e.const(lo), 1, True)],
        [LoopBound(e.const(hi), 1, False)],
    )


def store(array: Placeholder, *dims: str) -> AffineStoreOp:
    return AffineStoreOp(
        array, [e({d: 1}) for d in dims], ConstantOp(1.0)
    )


def simple_func():
    """for i in [0,7]: for j in [0,7]: A[i][j] = 1.0"""
    A = Placeholder("A", (8, 8))
    func = FuncOp("f", [A])
    outer, inner = loop("i", 0, 7), loop("j", 0, 7)
    inner.body.append(store(A, "i", "j"))
    outer.body.append(inner)
    func.body.append(outer)
    return func, A, outer, inner


def error_codes(func):
    return [d.code for d in verify_func(func).errors()]


class TestInvariants:
    def test_clean_function_verifies(self):
        func, *_ = simple_func()
        engine = verify_func(func)
        assert not engine.has_errors and not engine.warnings()

    def test_ver001_shadowed_iterator(self):
        func, A, outer, inner = simple_func()
        inner.iterator = "i"  # shadows the enclosing loop
        inner.body.ops[0].indices = [e({"i": 1}), e({"i": 1})]
        assert "VER001" in error_codes(func)

    def test_ver002_store_rank_mismatch(self):
        func, A, outer, inner = simple_func()
        inner.body.ops[0].indices.append(e({"j": 1}))  # rank 2, 3 indices
        assert "VER002" in error_codes(func)

    def test_ver002_load_rank_mismatch(self):
        func, A, outer, inner = simple_func()
        load = AffineLoadOp(A, [e({"i": 1}), e({"j": 1})])
        load.indices = [e({"i": 1})]
        inner.body.ops[0].value = load
        assert "VER002" in error_codes(func)

    def test_ver003_dead_iterator_reference(self):
        func, A, outer, inner = simple_func()
        inner.body.ops[0].indices = [e({"i": 1}), e({"k": 1})]
        engine = verify_func(func)
        assert [d.code for d in engine.errors()] == ["VER003"]
        assert "'k'" in engine.errors()[0].message

    @pytest.mark.parametrize(
        "attr, value",
        [
            ("pipeline", 0),
            ("pipeline", "yes"),
            ("unroll", -2),
            ("unroll", 2.5),
            ("dependence", "not-a-list"),
            ("dependence", [1, 2]),
        ],
    )
    def test_ver004_malformed_loop_pragma(self, attr, value):
        func, A, outer, inner = simple_func()
        inner.attributes[attr] = value
        assert error_codes(func) == ["VER004"]

    def test_ver004_partition_scheme_rank_mismatch(self):
        func, *_ = simple_func()
        func.attributes["partitions"] = {"A": PartitionScheme((2,), "cyclic")}
        assert error_codes(func) == ["VER004"]

    def test_ver004_partition_for_unknown_array(self):
        func, *_ = simple_func()
        func.attributes["partitions"] = {"Z": PartitionScheme((2, 2), "cyclic")}
        assert error_codes(func) == ["VER004"]

    def test_ver004_partitions_not_a_dict(self):
        func, *_ = simple_func()
        func.attributes["partitions"] = [("A", (2, 2))]
        assert error_codes(func) == ["VER004"]

    def test_ver005_unexpected_op_in_block(self):
        func, A, outer, inner = simple_func()
        inner.body.append(ConstantOp(3.0))  # a bare value op is not a statement
        assert error_codes(func) == ["VER005"]

    def test_ver005_loop_without_bounds(self):
        func, A, outer, inner = simple_func()
        inner.lowers = []
        assert "VER005" in error_codes(func)

    def test_ver006_zero_trip_loop_is_a_warning(self):
        func, A, outer, inner = simple_func()
        inner.uppers = [LoopBound(e.const(-1), 1, False)]
        engine = verify_func(func)
        assert not engine.has_errors
        assert [d.code for d in engine.warnings()] == ["VER006"]

    def test_all_errors_collected_in_one_walk(self):
        func, A, outer, inner = simple_func()
        inner.attributes["pipeline"] = 0
        inner.body.ops[0].indices = [e({"i": 1}), e({"k": 1})]
        collected = error_codes(func)
        assert "VER004" in collected and "VER003" in collected


class TestCodegenGuard:
    def test_codegen_refuses_broken_ir(self):
        # Ill-formed IR must not become silently wrong HLS C.
        func, A, outer, inner = simple_func()
        inner.body.ops[0].indices.append(e({"j": 1}))
        with pytest.raises(DiagnosticError) as info:
            generate_hls_c(func)
        assert info.value.code == "VER002"

    def test_codegen_escape_hatch(self):
        func, A, outer, inner = simple_func()
        inner.body.ops[0].indices.append(e({"j": 1}))
        assert "void f(" in generate_hls_c(func, verify=False)


class _BreakStores(Pass):
    """Deliberately corrupts every store (for verify_each tests)."""

    name = "break-stores"

    def run(self, func):
        for op in func.stores():
            op.indices = list(op.indices) + [e({"i": 1})]
        return True


class TestPassManagerVerification:
    def test_verify_each_catches_broken_pass(self):
        func = lower_to_affine(polybench.gemm(8))
        with pytest.raises(PassError) as info:
            PassManager([_BreakStores()]).run(func)
        assert "break-stores" in str(info.value)
        assert "VER002" in str(info.value)

    def test_verify_each_escape_hatch(self):
        func = lower_to_affine(polybench.gemm(8))
        # The hot-path escape hatch: no re-verification, no raise.
        PassManager([_BreakStores()], verify_each=False).run(func)
