"""Structured failure records in the evaluation report harness."""

from types import SimpleNamespace

import pytest

import repro.evaluation.report_all as report_all

pytestmark = pytest.mark.diagnostics


def _fake_experiments():
    def ok_main():
        print("table data")

    def broken_main():
        raise RuntimeError("model exploded")

    return {
        "ok": SimpleNamespace(main=ok_main),
        "broken": SimpleNamespace(main=broken_main),
    }


def test_failures_become_structured_records(monkeypatch):
    monkeypatch.setattr(report_all, "ALL_EXPERIMENTS", _fake_experiments())
    failures = []
    report = report_all.run_all(failures=failures)

    assert len(failures) == 1
    diagnostic = failures[0]
    assert diagnostic.code == "RPT001"
    assert "broken" in diagnostic.message
    assert "RuntimeError" in diagnostic.message
    assert "model exploded" in diagnostic.message
    assert diagnostic.location.function == "broken"

    # The failure is rendered in place and repeated in the summary.
    assert "error[RPT001]" in report
    assert "## summary" in report
    assert "1/2 experiments succeeded" in report
    # Successful output still present.
    assert "table data" in report


def test_all_green_summary(monkeypatch):
    experiments = _fake_experiments()
    del experiments["broken"]
    monkeypatch.setattr(report_all, "ALL_EXPERIMENTS", experiments)
    failures = []
    report = report_all.run_all(failures=failures)
    assert failures == []
    assert "1/1 experiments succeeded" in report
