"""Unit tests for the diagnostic record, engine, and carrier error."""

import pytest

from repro.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticEngine,
    DiagnosticError,
    Severity,
    SourceLocation,
    caller_location,
    describe,
)

pytestmark = pytest.mark.diagnostics


class TestCodes:
    def test_every_code_has_a_description(self):
        for code, description in CODES.items():
            assert describe(code) == description
            assert description

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            describe("XXX999")

    def test_diagnostic_requires_registered_code(self):
        with pytest.raises(KeyError):
            Diagnostic(Severity.ERROR, "XXX999", "nope")


class TestDiagnostic:
    def test_oneline_includes_severity_and_code(self):
        d = Diagnostic(Severity.ERROR, "SCH001", "bad factor")
        assert d.oneline() == "error[SCH001]: bad factor"

    def test_render_includes_location_and_notes(self):
        loc = SourceLocation(
            file="/home/user/kernel.py", line=12, function="gemm", compute="s"
        )
        d = Diagnostic(
            Severity.WARNING, "LEG005", "carried dep", location=loc,
            notes=("achievable II is bounded",),
        )
        text = d.render()
        assert "warning[LEG005]" in text
        assert "kernel.py:12" in text
        assert "function 'gemm'" in text
        assert "compute 's'" in text
        assert "note: achievable II is bounded" in text


class TestCallerLocation:
    def test_points_at_test_code_not_framework(self):
        loc = caller_location(function="f", compute="c")
        assert loc.file is not None and loc.file.endswith("test_engine.py")
        assert loc.function == "f" and loc.compute == "c"


class TestEngine:
    def test_collects_and_classifies(self):
        engine = DiagnosticEngine()
        engine.error("VER002", "rank mismatch")
        engine.warning("VER006", "zero trip")
        engine.note("GEN001", "fyi")
        assert len(engine) == 3
        assert [d.code for d in engine.errors()] == ["VER002"]
        assert [d.code for d in engine.warnings()] == ["VER006"]
        assert engine.has_errors

    def test_render_tallies(self):
        engine = DiagnosticEngine()
        engine.error("VER002", "a")
        engine.error("VER003", "b")
        assert "2 error(s), 0 warning(s)" in engine.render()
        assert DiagnosticEngine().render() == "no diagnostics"

    def test_raise_if_errors_folds_remaining_into_notes(self):
        engine = DiagnosticEngine()
        engine.error("VER002", "first")
        engine.error("VER003", "second")
        with pytest.raises(DiagnosticError) as info:
            engine.raise_if_errors()
        assert info.value.code == "VER002"
        assert "second" in str(info.value)

    def test_no_errors_no_raise(self):
        engine = DiagnosticEngine()
        engine.warning("VER006", "only a warning")
        engine.raise_if_errors()


class TestDiagnosticError:
    def test_is_a_value_error(self):
        assert issubclass(DiagnosticError, ValueError)
        with pytest.raises(ValueError):
            raise DiagnosticError("legacy message")

    def test_wraps_plain_message_with_default_code(self):
        exc = DiagnosticError("something broke")
        assert exc.code == "GEN001"
        assert exc.diagnostic.severity is Severity.ERROR

    def test_carries_ready_made_diagnostic(self):
        d = Diagnostic(Severity.ERROR, "SCH002", "unknown compute")
        exc = DiagnosticError(d)
        assert exc.diagnostic is d
        assert "SCH002" in str(exc)

    def test_with_location(self):
        exc = DiagnosticError("msg", code="SCH001")
        anchored = exc.with_location(SourceLocation(function="gemm"))
        assert anchored.diagnostic.location.function == "gemm"
        assert anchored.code == "SCH001"
