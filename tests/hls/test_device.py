"""Unit tests for the device model and the device zoo."""

import pytest

from repro.hls.device import (
    DEFAULT_DEVICE,
    DEVICES,
    FPGADevice,
    device_names,
    get_device,
)

XC7Z020 = DEFAULT_DEVICE


class TestXC7Z020:
    def test_paper_budgets(self):
        """Section VII-A: 220 DSPs, 53,200 LUTs, 106,400 FFs, 4.9 Mb."""
        assert XC7Z020.dsp == 220
        assert XC7Z020.lut == 53_200
        assert XC7Z020.ff == 106_400
        assert XC7Z020.bram_bits == int(4.9 * 1024 * 1024)

    def test_dual_port_brams(self):
        assert XC7Z020.bram_ports_per_bank == 2

    def test_default_device_is_the_papers_part(self):
        assert DEFAULT_DEVICE.name == "xc7z020"
        assert DEFAULT_DEVICE.clock_ns == 10.0


class TestDeviceZoo:
    def test_names_sorted_and_complete(self):
        assert device_names() == tuple(sorted(DEVICES))
        assert {"xc7z020", "xc7z045", "xcku060", "xczu9eg", "xcvu9p"} <= set(
            device_names()
        )

    @pytest.mark.parametrize("name", sorted(DEVICES))
    def test_every_part_has_positive_budgets(self, name):
        device = DEVICES[name]
        assert device.dsp > 0 and device.lut > 0
        assert device.ff > 0 and device.bram_bits > 0
        assert device.clock_ns > 0
        assert device.fraction == 1.0 and device.base is None

    def test_get_device_plain_lookup(self):
        assert get_device("xczu9eg") is DEVICES["xczu9eg"]

    def test_get_device_is_case_insensitive(self):
        assert get_device("XC7Z020") is DEFAULT_DEVICE
        assert get_device("  xc7z020  ") is DEFAULT_DEVICE

    def test_percent_suffix_scales_budgets(self):
        half = get_device("xc7z020@50%")
        assert half.dsp == 110
        assert half.name == "xc7z020@50%"

    def test_mhz_suffix_retimes_clock(self):
        fast = get_device("xc7z020@200mhz")
        assert fast.clock_ns == pytest.approx(5.0)
        assert fast.dsp == XC7Z020.dsp  # budgets untouched

    def test_suffixes_compose(self):
        device = get_device("xcku060@25%@300mhz")
        assert device.dsp == DEVICES["xcku060"].dsp // 4
        assert device.clock_ns == pytest.approx(1000.0 / 300.0)

    def test_unknown_name_lists_known_parts(self):
        with pytest.raises(ValueError, match="unknown device 'bogus'"):
            get_device("bogus")
        with pytest.raises(ValueError, match="xc7z020"):
            get_device("bogus")

    @pytest.mark.parametrize("bad", ["", "   ", None, 42])
    def test_non_string_or_empty_rejected(self, bad):
        with pytest.raises(ValueError, match="non-empty string"):
            get_device(bad)

    def test_bad_modifier_rejected(self):
        with pytest.raises(ValueError, match="bad device modifier 'fast'"):
            get_device("xc7z020@fast")


class TestAtClock:
    def test_clock_mhz_round_trip(self):
        assert XC7Z020.at_clock(250).clock_mhz == pytest.approx(250.0)

    def test_budgets_unchanged(self):
        retimed = XC7Z020.at_clock(300)
        assert (retimed.dsp, retimed.lut, retimed.ff, retimed.bram_bits) == (
            XC7Z020.dsp, XC7Z020.lut, XC7Z020.ff, XC7Z020.bram_bits
        )

    @pytest.mark.parametrize("mhz", [0, -100])
    def test_nonpositive_frequency_rejected(self, mhz):
        with pytest.raises(ValueError, match="must be > 0 MHz"):
            XC7Z020.at_clock(mhz)


class TestScaling:
    def test_scaled_budgets(self):
        half = XC7Z020.scaled(0.5)
        assert half.dsp == 110
        assert half.lut == 26_600
        assert half.ff == 53_200

    def test_scaled_name(self):
        assert "50%" in XC7Z020.scaled(0.5).name

    def test_full_scale_identity_budgets(self):
        full = XC7Z020.scaled(1.0)
        assert (full.dsp, full.lut, full.ff) == (220, 53_200, 106_400)

    def test_rescaling_multiplies_fractions(self):
        # Scaling a scaled device composes through the base part:
        # no @50%@50% name stacking, no compounded truncation.
        quarter = XC7Z020.scaled(0.5).scaled(0.5)
        assert quarter == XC7Z020.scaled(0.25)
        assert quarter.name == "xc7z020@25%"
        assert quarter.name.count("@") == 1
        assert quarter.fraction == 0.25
        assert quarter.base is XC7Z020

    def test_rescaling_rederives_from_base_budgets(self):
        # int(int(220 * 0.9) * 0.9) = 178, but int(220 * 0.81) = 178
        # too -- use a fraction where the orders differ: 220 * 0.55
        # truncates to 121, then 121 * 0.55 to 66; the base-derived
        # product gives int(220 * 0.3025) = 66 as well, so assert the
        # invariant directly instead of one cherry-picked case.
        for first in (0.55, 0.7, 0.9):
            for second in (0.55, 0.7, 0.9):
                stacked = XC7Z020.scaled(first).scaled(second)
                direct = XC7Z020.scaled(first * second)
                assert stacked == direct, (first, second)

    def test_rescale_back_to_base_returns_base(self):
        assert XC7Z020.scaled(1.0) is XC7Z020

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            XC7Z020.scaled(0.0)
        with pytest.raises(ValueError):
            XC7Z020.scaled(1.5)
        with pytest.raises(ValueError):
            XC7Z020.scaled(-0.5)

    def test_tiny_fraction_rejected_not_truncated(self):
        # 220 DSPs * 1e-3 truncates to 0: historically this produced a
        # budget that rejects every design and surfaced as a confusing
        # "no feasible candidate" far downstream.  Now it's immediate.
        with pytest.raises(ValueError, match="truncates nonzero budget"):
            XC7Z020.scaled(1e-3)

    def test_tiny_fraction_diagnostic_names_axes(self):
        with pytest.raises(ValueError, match="dsp"):
            XC7Z020.scaled(1e-3)
        # At 1e-6 even the LUT/FF/BRAM budgets truncate.
        with pytest.raises(ValueError, match="bram_bits.*dsp.*ff.*lut"):
            XC7Z020.scaled(1e-8)

    def test_tiny_composed_fraction_rejected(self):
        # The effective (product) fraction trips the zero-truncation
        # guard even when each individual step would be fine.
        with pytest.raises(ValueError, match="truncates nonzero budget"):
            XC7Z020.scaled(0.05).scaled(0.05)

    def test_smallest_viable_fraction_boundary(self):
        # 1/220 is the smallest fraction keeping every XC7Z020 budget
        # nonzero; just below it the DSP budget hits zero.
        smallest = 1.0 / XC7Z020.dsp
        scaled = XC7Z020.scaled(smallest)
        assert scaled.dsp == 1
        assert scaled.lut > 0 and scaled.ff > 0 and scaled.bram_bits > 0
        with pytest.raises(ValueError, match="dsp"):
            XC7Z020.scaled(smallest * 0.99)

    def test_zero_budget_axis_on_source_device_is_allowed(self):
        # An axis that is already zero on the source device cannot be
        # "truncated" -- only nonzero budgets trip the diagnostic.
        no_dsp = FPGADevice(name="softcore", dsp=0, lut=1000, ff=1000,
                            bram_bits=1000)
        scaled = no_dsp.scaled(0.5)
        assert scaled.dsp == 0 and scaled.lut == 500

    def test_frozen(self):
        with pytest.raises(Exception):
            XC7Z020.dsp = 1


class TestDeprecatedImport:
    def test_bare_constant_warns_and_aliases_default(self):
        import repro.hls.device as device_module

        with pytest.warns(DeprecationWarning, match="XC7Z020"):
            legacy = device_module.XC7Z020
        assert legacy is DEFAULT_DEVICE

    def test_unknown_attribute_still_raises(self):
        import repro.hls.device as device_module

        with pytest.raises(AttributeError, match="no attribute 'NOPE'"):
            device_module.NOPE
