"""Unit tests for the device model."""

import pytest

from repro.hls.device import XC7Z020, FPGADevice


class TestXC7Z020:
    def test_paper_budgets(self):
        """Section VII-A: 220 DSPs, 53,200 LUTs, 106,400 FFs, 4.9 Mb."""
        assert XC7Z020.dsp == 220
        assert XC7Z020.lut == 53_200
        assert XC7Z020.ff == 106_400
        assert XC7Z020.bram_bits == int(4.9 * 1024 * 1024)

    def test_dual_port_brams(self):
        assert XC7Z020.bram_ports_per_bank == 2


class TestScaling:
    def test_scaled_budgets(self):
        half = XC7Z020.scaled(0.5)
        assert half.dsp == 110
        assert half.lut == 26_600
        assert half.ff == 53_200

    def test_scaled_name(self):
        assert "50%" in XC7Z020.scaled(0.5).name

    def test_full_scale_identity_budgets(self):
        full = XC7Z020.scaled(1.0)
        assert (full.dsp, full.lut, full.ff) == (220, 53_200, 106_400)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            XC7Z020.scaled(0.0)
        with pytest.raises(ValueError):
            XC7Z020.scaled(1.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            XC7Z020.dsp = 1
