"""Unit tests for the device model."""

import pytest

from repro.hls.device import XC7Z020, FPGADevice


class TestXC7Z020:
    def test_paper_budgets(self):
        """Section VII-A: 220 DSPs, 53,200 LUTs, 106,400 FFs, 4.9 Mb."""
        assert XC7Z020.dsp == 220
        assert XC7Z020.lut == 53_200
        assert XC7Z020.ff == 106_400
        assert XC7Z020.bram_bits == int(4.9 * 1024 * 1024)

    def test_dual_port_brams(self):
        assert XC7Z020.bram_ports_per_bank == 2


class TestScaling:
    def test_scaled_budgets(self):
        half = XC7Z020.scaled(0.5)
        assert half.dsp == 110
        assert half.lut == 26_600
        assert half.ff == 53_200

    def test_scaled_name(self):
        assert "50%" in XC7Z020.scaled(0.5).name

    def test_full_scale_identity_budgets(self):
        full = XC7Z020.scaled(1.0)
        assert (full.dsp, full.lut, full.ff) == (220, 53_200, 106_400)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            XC7Z020.scaled(0.0)
        with pytest.raises(ValueError):
            XC7Z020.scaled(1.5)
        with pytest.raises(ValueError):
            XC7Z020.scaled(-0.5)

    def test_tiny_fraction_rejected_not_truncated(self):
        # 220 DSPs * 1e-3 truncates to 0: historically this produced a
        # budget that rejects every design and surfaced as a confusing
        # "no feasible candidate" far downstream.  Now it's immediate.
        with pytest.raises(ValueError, match="truncates nonzero budget"):
            XC7Z020.scaled(1e-3)

    def test_tiny_fraction_diagnostic_names_axes(self):
        with pytest.raises(ValueError, match="dsp"):
            XC7Z020.scaled(1e-3)
        # At 1e-6 even the LUT/FF/BRAM budgets truncate.
        with pytest.raises(ValueError, match="bram_bits.*dsp.*ff.*lut"):
            XC7Z020.scaled(1e-8)

    def test_smallest_viable_fraction_boundary(self):
        # 1/220 is the smallest fraction keeping every XC7Z020 budget
        # nonzero; just below it the DSP budget hits zero.
        smallest = 1.0 / XC7Z020.dsp
        scaled = XC7Z020.scaled(smallest)
        assert scaled.dsp == 1
        assert scaled.lut > 0 and scaled.ff > 0 and scaled.bram_bits > 0
        with pytest.raises(ValueError, match="dsp"):
            XC7Z020.scaled(smallest * 0.99)

    def test_zero_budget_axis_on_source_device_is_allowed(self):
        # An axis that is already zero on the source device cannot be
        # "truncated" -- only nonzero budgets trip the diagnostic.
        no_dsp = FPGADevice(name="softcore", dsp=0, lut=1000, ff=1000,
                            bram_bits=1000)
        scaled = no_dsp.scaled(0.5)
        assert scaled.dsp == 0 and scaled.lut == 500

    def test_frozen(self):
        with pytest.raises(Exception):
            XC7Z020.dsp = 1
