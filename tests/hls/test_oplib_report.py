"""Unit tests for the operator library, report structures, and power model."""

import pytest

from repro.dsl import dtypes
from repro.hls import oplib
from repro.hls.device import DEFAULT_DEVICE
from repro.hls.power import estimate_power
from repro.hls.report import LoopReport, Resources, SynthesisReport, speedup


class TestOpLib:
    def test_float_mac_uses_dsps(self):
        add = oplib.op_cost("+", dtypes.float32)
        mul = oplib.op_cost("*", dtypes.float32)
        assert add.dsp > 0 and mul.dsp > 0
        assert add.latency >= 1 and mul.latency >= 1

    def test_float_div_slowest_basic_op(self):
        div = oplib.op_cost("/", dtypes.float32)
        for kind in "+-*":
            assert div.latency > oplib.op_cost(kind, dtypes.float32).latency

    def test_double_costs_more_than_float(self):
        f = oplib.op_cost("+", dtypes.float32)
        d = oplib.op_cost("+", dtypes.float64)
        assert d.latency > f.latency
        assert d.dsp > f.dsp
        assert d.lut > f.lut

    def test_int_add_is_free_latency(self):
        assert oplib.op_cost("+", dtypes.int32).latency == 0

    def test_narrow_int_cheaper(self):
        wide = oplib.op_cost("+", dtypes.int32)
        narrow = oplib.op_cost("+", dtypes.int8)
        assert narrow.lut < wide.lut

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            oplib.op_cost("atan2", dtypes.float32)

    def test_intrinsics_characterized(self):
        for name in ("min", "max", "abs", "sqrt", "exp", "log", "relu"):
            assert oplib.op_cost(name, dtypes.float32).latency >= 0


class TestResources:
    def test_add(self):
        a = Resources(dsp=1, lut=10, ff=20)
        b = Resources(dsp=2, lut=5, ff=1, bram_bits=8)
        c = a + b
        assert (c.dsp, c.lut, c.ff, c.bram_bits) == (3, 15, 21, 8)

    def test_scaled(self):
        assert Resources(dsp=2, lut=3).scaled(4).dsp == 8

    def test_max_with(self):
        a = Resources(dsp=1, lut=100)
        b = Resources(dsp=5, lut=10)
        m = a.max_with(b)
        assert (m.dsp, m.lut) == (5, 100)


def _report(cycles, dsp=0, lut=0, ff=0, loops=()):
    return SynthesisReport(
        function_name="f",
        device=DEFAULT_DEVICE,
        clock_ns=10.0,
        total_cycles=cycles,
        resources=Resources(dsp=dsp, lut=lut, ff=ff),
        loops=list(loops),
        power_w=0.5,
    )


class TestSynthesisReport:
    def test_latency_us(self):
        assert _report(1000).latency_us == 10.0

    def test_utilizations(self):
        r = _report(1, dsp=110, lut=26_600, ff=53_200)
        assert r.dsp_util == pytest.approx(0.5)
        assert r.lut_util == pytest.approx(0.5)
        assert r.ff_util == pytest.approx(0.5)

    def test_feasible(self):
        assert _report(1, dsp=220).feasible()
        assert not _report(1, dsp=221).feasible()
        assert not _report(1, lut=53_201).feasible()
        assert _report(1, dsp=200).feasible(slack=1.0)
        assert not _report(1, dsp=200).feasible(slack=0.5)

    def test_worst_ii(self):
        loops = [
            LoopReport("i", 8, True, 3, 5, 100),
            LoopReport("j", 8, True, 7, 5, 100),
            LoopReport("k", 8, False, None, 5, 100),
        ]
        assert _report(1, loops=loops).worst_ii() == 7

    def test_worst_ii_none(self):
        assert _report(1).worst_ii() is None

    def test_speedup(self):
        assert speedup(_report(1000), _report(10)) == 100.0

    def test_speedup_zero_safe(self):
        assert speedup(_report(100), _report(0)) == 100.0

    def test_summary_renders(self):
        text = _report(123, dsp=10).summary()
        assert "123 cycles" in text and "DSP 10" in text


class TestPower:
    def test_monotone_in_resources(self):
        small = estimate_power(Resources(dsp=10, lut=1000, ff=1000))
        large = estimate_power(Resources(dsp=100, lut=10000, ff=10000))
        assert large > small

    def test_static_floor(self):
        assert estimate_power(Resources()) > 0

    def test_table3_range(self):
        """Designs in Table III's resource range give power in its range."""
        # POM GEMM: 166 DSP, 23067 FF, 30966 LUT -> paper 0.459 W
        p = estimate_power(Resources(dsp=166, ff=23067, lut=30966))
        assert 0.3 < p < 0.7
        # ScaleHLS GEMM: 214 DSP, 41616 FF, 42676 LUT -> paper 0.767 W
        p2 = estimate_power(Resources(dsp=214, ff=41616, lut=42676))
        assert p2 > p
