"""Unit tests for the virtual HLS estimator (latency, II, resources)."""

import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.hls import DEFAULT_DEVICE, HlsEstimator
from repro.pipeline import estimate, lower_to_affine


def gemm(n):
    with Function("gemm") as f:
        i = var("i", 0, n)
        j = var("j", 0, n)
        k = var("k", 0, n)
        A = placeholder("A", (n, n))
        B = placeholder("B", (n, n))
        C = placeholder("C", (n, n))
        s = compute("s", [k, i, j], A(i, j) + B(i, k) * C(k, j), A(i, j))
    return f, s, (A, B, C)


def elementwise(n):
    with Function("ew") as f:
        i = var("i", 0, n)
        A = placeholder("A", (n,))
        B = placeholder("B", (n,))
        s = compute("s", [i], A(i) * 2.0, B(i))
    return f, s, (A, B)


class TestSequentialBaseline:
    def test_latency_scales_with_trip_counts(self):
        f8, _, _ = gemm(8)
        f16, _, _ = gemm(16)
        r8, r16 = estimate(f8), estimate(f16)
        ratio = r16.total_cycles / r8.total_cycles
        assert 7.0 < ratio < 9.0  # 2^3 = 8 with small overhead noise

    def test_baseline_shares_operators(self):
        f, _, _ = gemm(64)
        r = estimate(f)
        # One MAC shared across all iterations: a handful of DSPs.
        assert r.resources.dsp <= 10

    def test_loop_reports_cover_nest(self):
        f, _, _ = gemm(8)
        r = estimate(f)
        assert [l.iterator for l in r.loops] == ["k", "i", "j"]
        assert all(not l.pipelined for l in r.loops)
        assert r.loops[0].trip_count == 8


class TestPipeline:
    def test_pipeline_reduces_latency(self):
        f0, _, _ = elementwise(1024)
        r0 = estimate(f0)
        f1, s, _ = elementwise(1024)
        s.pipeline("i", 1)
        r1 = estimate(f1)
        assert r1.total_cycles < r0.total_cycles / 3

    def test_achieved_ii_reported(self):
        f, s, _ = elementwise(256)
        s.pipeline("i", 1)
        r = estimate(f)
        (loop,) = r.loops
        assert loop.pipelined
        assert loop.achieved_ii == 1

    def test_reduction_carried_outside_pipeline_gives_ii_1(self):
        """Paper Fig. 6: pipeline j0 with k outermost -> II = 1."""
        f, s, (A, B, C) = gemm(32)
        s.tile("i", "j", 4, 4, "i0", "j0", "i1", "j1")
        s.pipeline("j0", 1)
        s.unroll("i1", 0)
        s.unroll("j1", 0)
        A.partition([4, 4], "cyclic")
        B.partition([4, 1], "cyclic")
        C.partition([1, 4], "cyclic")
        r = estimate(f)
        assert r.worst_ii() == 1

    def test_reduction_carried_at_pipelined_loop_hurts_ii(self):
        """Pipelining the reduction loop itself forces a large II."""
        with Function("dot") as f:
            i = var("i", 0, 256)
            A = placeholder("A", (256,))
            B = placeholder("B", (256,))
            acc = placeholder("acc", (1,))
            s = compute("s", [i], acc(0) + A(i) * B(i), acc(0))
        s.pipeline("i", 1)
        r = estimate(f)
        assert r.worst_ii() > 1

    def test_pipeline_fully_unrolls_inner_loops(self):
        """Vitis semantics: pipelining a loop unrolls everything inside.

        Without partitioning the 256 unrolled copies are port-bound, so
        the II explodes and the operators timeshare down to a few units.
        """
        f, s, (A, B, C) = gemm(16)
        s.pipeline("k", 1)  # i and j (16x16 = 256 copies) get unrolled
        r = estimate(f)
        assert r.worst_ii() > 64  # port-starved
        # Sharing across the huge II collapses compute resources.
        assert r.resources.dsp <= 20

    def test_pipeline_unroll_with_partitioning_is_spatial(self):
        """The same full unroll with complete partitioning keeps copies."""
        f, s, (A, B, C) = gemm(16)
        s.pipeline("k", 1)
        for arr in (A, B, C):
            arr.partition([16, 16], "cyclic")
        r = estimate(f)
        # Ports no longer bound the II; the float-accumulate recurrence
        # carried by k does (load + add + store latency).
        assert 2 <= r.worst_ii() <= 10
        assert r.resources.dsp > 100  # far more spatial than the port-bound case


class TestMemoryPorts:
    def _unrolled(self, n, partition_factor):
        f, s, (A, B) = elementwise(n)
        s.split("i", 16, "i0", "i1")
        s.pipeline("i0", 1)
        s.unroll("i1", 0)
        if partition_factor:
            A.partition([partition_factor], "cyclic")
            B.partition([partition_factor], "cyclic")
        return estimate(f)

    def test_unpartitioned_unroll_is_port_bound(self):
        r = self._unrolled(256, None)
        # 16 distinct elements on one dual-ported bank -> II >= 8
        assert r.worst_ii() >= 8

    def test_matching_cyclic_partition_restores_ii(self):
        r = self._unrolled(256, 16)
        assert r.worst_ii() == 1

    def test_partial_partition_partial_relief(self):
        full = self._unrolled(256, 16)
        half = self._unrolled(256, 4)
        none = self._unrolled(256, None)
        assert full.worst_ii() < half.worst_ii() < none.worst_ii()

    def test_block_partition_contiguous_unroll_conflicts(self):
        """Block partitioning misaligns with stride-1 unroll access."""
        f, s, (A, B) = elementwise(256)
        s.split("i", 16, "i0", "i1")
        s.pipeline("i0", 1)
        s.unroll("i1", 0)
        A.partition([16], "block")
        B.partition([16], "block")
        r_block = estimate(f)
        r_cyclic = self._unrolled(256, 16)
        assert r_block.worst_ii() > r_cyclic.worst_ii()


class TestResourceSharing:
    def test_large_ii_shares_units(self):
        """A port-bound pipeline timeshares its operators (POLSCA effect)."""
        bound = self._estimate_with_partition(None)
        fast = self._estimate_with_partition(16)
        assert bound.worst_ii() > fast.worst_ii()
        assert bound.resources.dsp < fast.resources.dsp

    @staticmethod
    def _estimate_with_partition(factor):
        with Function("axpy") as f:
            i = var("i", 0, 512)
            A = placeholder("A", (512,))
            B = placeholder("B", (512,))
            s = compute("s", [i], A(i) * 2.0 + B(i), B(i))
        s.split("i", 16, "i0", "i1")
        s.pipeline("i0", 1)
        s.unroll("i1", 0)
        if factor:
            A.partition([factor], "cyclic")
            B.partition([factor], "cyclic")
        return estimate(f)

    def test_unroll_multiplies_resources(self):
        f1, s1, _ = elementwise(256)
        s1.split("i", 16, "i0", "i1")
        s1.pipeline("i0", 1)
        s1.unroll("i1", 0)
        for p in f1.placeholders():
            p.partition([16], "cyclic")
        r_unrolled = estimate(f1)

        f2, s2, _ = elementwise(256)
        s2.pipeline("i", 1)
        r_plain = estimate(f2)
        assert r_unrolled.resources.dsp >= r_plain.resources.dsp
        assert r_unrolled.total_cycles < r_plain.total_cycles


class TestSequentialUnroll:
    def test_unroll_without_pipeline(self):
        f0, s0, _ = elementwise(256)
        r0 = estimate(f0)
        f1, s1, (A, B) = elementwise(256)
        s1.unroll("i", 8)
        A.partition([8], "cyclic")
        B.partition([8], "cyclic")
        r1 = estimate(f1)
        assert r1.total_cycles < r0.total_cycles
        assert r1.resources.lut > r0.resources.lut


class TestSkewedLoops:
    def test_variable_bounds_estimated_conservatively(self):
        with Function("sk") as f:
            i = var("i", 0, 8)
            j = var("j", 0, 8)
            A = placeholder("A", (8, 8))
            s = compute("s", [i, j], A(i, j) + 1.0, A(i, j))
        s.skew("i", "j", 1, "ip", "jp")
        r = estimate(f)
        assert r.total_cycles > 0
        outer = r.loops[0]
        assert outer.trip_count == 8


class TestEstimatorConfig:
    def test_custom_device(self):
        f, _, _ = gemm(8)
        small = DEFAULT_DEVICE.scaled(0.1)
        report = HlsEstimator(device=small).estimate(lower_to_affine(f))
        assert report.device is small

    def test_clock_scaling_restages_operators(self):
        """A faster clock needs more pipeline stages per operator, so the
        cycle count grows and wall-clock latency improves sublinearly."""
        f, _, _ = gemm(8)
        r5 = HlsEstimator(clock_ns=5.0).estimate(lower_to_affine(f))
        r10 = HlsEstimator(clock_ns=10.0).estimate(lower_to_affine(f))
        assert r5.total_cycles > r10.total_cycles
        assert r5.latency_us < r10.latency_us  # still a net win
        assert r5.latency_us > r10.latency_us / 2  # but not a free 2x

    def test_slow_clock_fewer_cycles(self):
        f, _, _ = gemm(8)
        r20 = HlsEstimator(clock_ns=20.0).estimate(lower_to_affine(f))
        r10 = HlsEstimator(clock_ns=10.0).estimate(lower_to_affine(f))
        assert r20.total_cycles <= r10.total_cycles

    def test_reference_clock_identity(self):
        """At the 10 ns characterization clock, scaling is a no-op."""
        f, _, _ = gemm(8)
        a = HlsEstimator(clock_ns=10.0).estimate(lower_to_affine(f))
        b = HlsEstimator().estimate(lower_to_affine(f))
        assert a.total_cycles == b.total_cycles
