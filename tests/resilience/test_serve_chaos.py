"""Chaos on the server: a poisoned job cannot hurt anyone but itself.

Extends the batch-layer chaos suite through the serve path: a seeded
:class:`~repro.faults.FaultPlan` rides a job request into a sandboxed
worker, crashes it mid-sweep and corrupts its checkpoint journal, while
a sibling session runs the same workload clean in a concurrent worker.
The claims under test are the ISSUE's fault-isolation core:

* the poisoned worker's death never reaches the server process or the
  sibling job -- the clean job's design stays bit-identical to batch;
* the shared content-addressed store stays uncorrupted -- the fault spec
  is part of the cache key, so a poisoned job can never write (or warm)
  a clean request's entry;
* the poisoned job itself converges: retry runs disarmed over the
  (corrupt-line-skipping) journal and lands on the fault-free design.
"""

import threading

import pytest

from repro.dse import auto_dse
from repro.dse.parallel import build_workload
from repro.faults import FaultPlan
from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.serve.jobs import (
    JobSpec,
    cache_key,
    design_fingerprint,
    dse_design_payload,
)
from repro.serve.store import ResultStore

pytestmark = [pytest.mark.resilience, pytest.mark.serve]

WORKLOAD, SIZE = "gemm", 48

#: Seeded chaos plan (the batch chaos suite's idiom): seed 1 draws both
#: worker-killing crashes and journal-corrupting faults.
CHAOS_FAULT = {"seed": 1, "candidates": 10, "rate": 0.5,
               "kinds": ["crash", "corrupt"]}


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(port=0, state_dir=str(tmp_path / "state"), workers=2)
    server = ReproServer(config)
    port = server.start()
    threading.Thread(target=server._httpd.serve_forever, daemon=True).start()
    yield server, ServeClient(f"http://127.0.0.1:{port}", timeout_s=60.0)
    server.shutdown()


@pytest.fixture(scope="module")
def clean_fingerprint():
    result = auto_dse(build_workload(WORKLOAD, SIZE))
    return design_fingerprint(dse_design_payload(result, WORKLOAD, SIZE))


def test_seeded_plan_draws_real_chaos():
    """The plan under test genuinely kills workers and corrupts journals."""
    plan = FaultPlan.random(
        seed=CHAOS_FAULT["seed"],
        candidates=CHAOS_FAULT["candidates"],
        kinds=tuple(CHAOS_FAULT["kinds"]),
        rate=CHAOS_FAULT["rate"],
    )
    kinds = {fault.kind for fault in plan.faults}
    assert kinds == {"crash", "corrupt"}


def test_poisoned_job_cannot_corrupt_store_or_sibling(
    server, clean_fingerprint
):
    daemon, client = server
    poisoned_session = client.open_session()
    clean_session = client.open_session()

    # Poisoned and clean jobs in flight together, one worker each.
    _status, poisoned = client.submit(
        "dse", WORKLOAD, SIZE, fault=CHAOS_FAULT, session=poisoned_session
    )
    _status, clean = client.submit(
        "dse", WORKLOAD, SIZE, session=clean_session
    )

    clean_record = client.wait_done(clean["job"], timeout_s=120)
    poisoned_record = client.wait_done(poisoned["job"], timeout_s=120)

    # The sibling session never noticed: clean result is bit-identical
    # to the in-process batch run.
    assert clean_record["status"] == "done", clean_record
    assert (
        design_fingerprint(clean_record["result"]["design"])
        == clean_fingerprint
    )

    # The poisoned job died at least once (SRV004 retry), then converged
    # to the same fault-free design over its corrupt-line-skipping
    # journal -- the batch layer's chaos-resume idiom, through HTTP.
    assert poisoned_record["status"] == "done", poisoned_record
    assert poisoned_record["attempts"] >= 2
    events = client.events(poisoned["job"])["events"]
    assert any(e.get("code") == "SRV004" for e in events)
    assert (
        design_fingerprint(poisoned_record["result"]["design"])
        == clean_fingerprint
    )

    # The server process itself never crashed and kept serving.
    assert client.health()

    # Store integrity: reload from disk, no corrupt entries, and the
    # poisoned request lives under its own key, not the clean one.
    store = ResultStore(daemon.config.state_dir)
    assert store.stats()["corrupt_skipped"] == 0
    clean_key = cache_key(
        JobSpec.from_request({"kind": "dse", "workload": WORKLOAD, "size": SIZE})
    )
    poisoned_key = cache_key(
        JobSpec.from_request(
            {"kind": "dse", "workload": WORKLOAD, "size": SIZE,
             "fault": CHAOS_FAULT}
        )
    )
    assert poisoned_key != clean_key
    assert store.lookup(clean_key)["fingerprint"] == clean_fingerprint
    assert store.lookup(poisoned_key)["fingerprint"] == clean_fingerprint

    # And the clean key stays a warm hit with the clean design.
    status, payload = client.submit("dse", WORKLOAD, SIZE)
    assert status == 200
    assert payload["fingerprint"] == clean_fingerprint


def test_hang_fault_degrades_inside_its_own_job(server, clean_fingerprint):
    """A hanging candidate burns its own budget, not the server's."""
    _daemon, client = server
    record = client.run(
        kind="dse",
        workload=WORKLOAD,
        size=SIZE,
        options={"candidate_timeout_s": 5.0},
        fault={"faults": [{"kind": "hang", "candidate": 3}]},
        timeout_s=120,
    )
    assert record["status"] == "done", record
    assert "DSE003" in record["result"]["search"]["quarantine"]
    assert client.health()
