"""Watchdog deadline unit tests: injectable clock, scoping, hot-loop polls."""

import pytest

from repro.isl.affine import AffineExpr
from repro.isl.constraint import Constraint
from repro.isl.sets import BasicSet
from repro.util.deadline import (
    Deadline,
    DeadlineExceeded,
    active,
    checkpoint,
    deadline_scope,
)

pytestmark = pytest.mark.resilience


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_deadline_expires_with_the_clock():
    clock = FakeClock()
    deadline = Deadline(2.0, clock=clock)
    deadline.poll()
    clock.advance(1.5)
    assert not deadline.exceeded()
    assert deadline.remaining() == pytest.approx(0.5)
    clock.advance(1.0)
    with pytest.raises(DeadlineExceeded) as info:
        deadline.poll()
    assert info.value.elapsed_s == pytest.approx(2.5)
    assert info.value.budget_s == pytest.approx(2.0)


def test_expire_now_overrides_the_clock():
    deadline = Deadline(3600.0, clock=FakeClock())
    deadline.poll()
    deadline.expire_now()
    with pytest.raises(DeadlineExceeded):
        deadline.poll()


def test_checkpoint_is_a_noop_without_an_active_deadline():
    assert active() is None
    checkpoint()  # must not raise


def test_deadline_scope_nests_and_restores():
    clock = FakeClock()
    outer = Deadline(10.0, clock=clock)
    inner = Deadline(1.0, clock=clock)
    with deadline_scope(outer):
        assert active() is outer
        with deadline_scope(inner):
            assert active() is inner
            clock.advance(2.0)  # inner expired, outer still fine
            with pytest.raises(DeadlineExceeded):
                checkpoint()
        assert active() is outer
        checkpoint()
    assert active() is None


def test_deadline_scope_accepts_none():
    with deadline_scope(None):
        assert active() is None
        checkpoint()


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_fourier_motzkin_elimination_polls_the_deadline():
    # drop_dim memoizes on the exact constraint system, so a unique set of
    # dimension names guarantees the elimination (and its checkpoint) runs.
    dims = ("zz_wd_i", "zz_wd_j")
    bset = BasicSet(
        dims,
        [
            Constraint.ge(AffineExpr.var(dims[0]), 0),
            Constraint.le(AffineExpr.var(dims[0]), 7),
            Constraint.ge(AffineExpr.var(dims[1]), 0),
            Constraint.le(
                AffineExpr.var(dims[1]) + AffineExpr.var(dims[0]) * 2, 41
            ),
        ],
    )
    expired = Deadline(0.0, clock=FakeClock())
    expired.expire_now()
    with deadline_scope(expired):
        with pytest.raises(DeadlineExceeded):
            bset.drop_dim(dims[0])


def test_lowering_polls_the_deadline():
    from repro.workloads import polybench

    function = polybench.gemm(8)
    expired = Deadline(0.0, clock=FakeClock())
    expired.expire_now()
    with deadline_scope(expired):
        with pytest.raises(DeadlineExceeded):
            function.lower()
