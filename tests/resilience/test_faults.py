"""The chaos suite: deterministic fault injection through production paths.

The invariant under test (the issue's acceptance criterion): for every
workload, any fault plan plus a crash plus a resume yields the same best
design as a fault-free run.
"""

import pytest

from repro.diagnostics import DiagnosticError
from repro.faults import Fault, FaultPlan, FAULT_KINDS, InjectedCrash
from repro.workloads import polybench
from repro.workloads.stencils import seidel

from tests.resilience.test_checkpoint_resume import fingerprint
from repro.dse.options import DseOptions

pytestmark = pytest.mark.resilience

WORKLOADS = {
    "gemm": lambda: polybench.gemm(16),
    "bicg": lambda: polybench.bicg(16),
    "gesummv": lambda: polybench.gesummv(16),
    "seidel": lambda: seidel(8, 2),
}


def test_fault_plan_validation():
    with pytest.raises(ValueError):
        Fault("meteor", 0)
    with pytest.raises(ValueError):
        Fault("crash", -1)
    with pytest.raises(ValueError):
        Fault("transient", 0, count=0)
    with pytest.raises(ValueError):
        FaultPlan([Fault("crash", 1), Fault("crash", 1)])


def test_random_plans_are_reproducible_from_their_seed():
    a = FaultPlan.random(seed=7, candidates=20)
    b = FaultPlan.random(seed=7, candidates=20)
    assert a.faults == b.faults
    assert FaultPlan.random(seed=8, candidates=20).faults != a.faults


def test_transient_faults_are_retried_to_the_fault_free_result():
    baseline = polybench.gemm(16).auto_DSE()
    plan = FaultPlan([Fault("transient", 2, count=2)])
    result = polybench.gemm(16).auto_DSE(options=DseOptions(fault_plan=plan))
    assert plan.fired == [("transient", 2), ("transient", 2)]
    assert result.stats.estimator_retries == 2
    assert not result.quarantine
    assert fingerprint(result) == fingerprint(baseline)


def test_permanent_fault_quarantines_without_aborting():
    plan = FaultPlan([Fault("permanent", 3)])
    result = polybench.gemm(16).auto_DSE(options=DseOptions(fault_plan=plan))
    assert ("permanent", 3) in plan.fired
    assert result.quarantine
    assert all(q.diagnostic.code == "DSE001" for q in result.quarantine)
    assert result.degraded
    assert result.report.total_cycles > 0


def test_hung_candidate_is_quarantined_as_timeout():
    # Acceptance criterion: a hung candidate is quarantined with a timeout
    # diagnostic instead of aborting the sweep.
    plan = FaultPlan([Fault("hang", 3)])
    result = polybench.gemm(16).auto_DSE(options=DseOptions(fault_plan=plan, candidate_timeout_s=30.0))
    assert ("hang", 3) in plan.fired
    assert result.stats.timeouts == 1
    assert result.stats.timeout_s > 0
    timed_out = [q for q in result.quarantine if q.diagnostic.code == "DSE003"]
    assert len(timed_out) == 1
    assert timed_out[0].elapsed_s is not None
    assert result.report.total_cycles > 0  # the sweep still found a design


def test_hang_without_a_deadline_is_a_harness_error():
    plan = FaultPlan([Fault("hang", 2)])
    with pytest.raises(ValueError, match="no candidate_timeout_s"):
        polybench.gemm(16).auto_DSE(options=DseOptions(fault_plan=plan))


def test_crash_fires_as_base_exception(tmp_path):
    journal = tmp_path / "gemm.jsonl"
    plan = FaultPlan([Fault("crash", 2)])
    with pytest.raises(InjectedCrash):
        polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), fault_plan=plan))
    assert ("crash", 2) in plan.fired


def test_crash_at_every_append_point_resumes_to_the_fault_free_best(tmp_path):
    # For each journal append a crash could follow, kill the run there and
    # resume fault-free: every prefix of the journal must reconstruct the
    # sweep to the identical best design.
    baseline = polybench.gemm(16).auto_DSE()
    total = baseline.stats.candidates
    assert total >= 5
    crash_points = 0
    for ordinal in range(total + 2):  # +2: past the end, crash never fires
        journal = tmp_path / f"crash_at_{ordinal}.jsonl"
        plan = FaultPlan([Fault("crash", ordinal)])
        try:
            result = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), fault_plan=plan))
        except InjectedCrash:
            crash_points += 1
            result = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
        assert fingerprint(result) == fingerprint(baseline), ordinal
    assert crash_points >= total


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seeded_chaos_plus_crash_plus_resume_equals_fault_free(
    workload, seed, tmp_path
):
    # The chaos invariant, across workloads and seeds: inject a seeded mix
    # of faults (possibly crashing mid-sweep), then resume fault-free; the
    # final design must match the fault-free sweep bit for bit.
    build = WORKLOADS[workload]
    baseline = build().auto_DSE()
    journal = tmp_path / f"{workload}_{seed}.jsonl"
    plan = FaultPlan.random(seed=seed, candidates=12, rate=0.5)
    try:
        build().auto_DSE(options=DseOptions(checkpoint=str(journal), fault_plan=plan, candidate_timeout_s=30.0))
    except InjectedCrash:
        pass
    except DiagnosticError:
        # A permanent fault on the degree-1 baseline has no design to
        # degrade to; the journal still holds the quarantine record.
        pass
    result = build().auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert fingerprint(result) == fingerprint(baseline), (workload, seed)
    assert not result.quarantine


def test_corrupt_fault_mangles_the_line_but_not_the_run(tmp_path):
    baseline = polybench.gemm(16).auto_DSE()
    journal = tmp_path / "gemm.jsonl"
    plan = FaultPlan([Fault("corrupt", 1)])
    first = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), fault_plan=plan))
    assert ("corrupt", 1) in plan.fired
    # The in-memory sweep is unaffected by the mangled line...
    assert fingerprint(first) == fingerprint(baseline)
    # ...and resume skips it (DSE006) and re-evaluates that candidate.
    resumed = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert fingerprint(resumed) == fingerprint(baseline)
    assert any(d.code == "DSE006" for d in resumed.diagnostics)
    assert resumed.stats.candidates >= 1


def test_fault_plan_is_uninstalled_after_the_sweep():
    from repro import faults

    plan = FaultPlan([Fault("permanent", 3)])
    polybench.gemm(16).auto_DSE(options=DseOptions(fault_plan=plan))
    assert faults.active() is None


def test_all_fault_kinds_are_exercised_by_some_seed():
    # Guards the chaos matrix itself: the seeds used above must cover every
    # fault kind, or a kind could silently stop being tested.
    kinds = set()
    for seed in (1, 2, 3):
        plan = FaultPlan.random(seed=seed, candidates=12, rate=0.5)
        kinds.update(fault.kind for fault in plan.faults)
    assert kinds == set(FAULT_KINDS)
