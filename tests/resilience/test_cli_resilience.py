"""CLI contract: exit codes for degraded/interrupted sweeps, resume hints."""

import pytest

import repro.dse.engine as engine_mod
from repro.cli import main
from repro.workloads import polybench
from repro.dse.options import DseOptions

pytestmark = pytest.mark.resilience


def _sabotage_degree_4(monkeypatch):
    original = engine_mod.plan_node_config

    def sabotaged(function, plan, name, degree, program=None):
        if degree >= 4:
            raise RuntimeError("synthetic failure at degree 4")
        return original(function, plan, name, degree, program=program)

    monkeypatch.setattr(engine_mod, "plan_node_config", sabotaged)


def test_degraded_sweep_exits_nonzero(monkeypatch, capsys):
    _sabotage_degree_4(monkeypatch)
    rc = main(["dse", "gemm", "--size", "16"])
    assert rc == 3
    assert "--allow-degraded" in capsys.readouterr().err


def test_allow_degraded_accepts_the_best_design(monkeypatch, capsys):
    _sabotage_degree_4(monkeypatch)
    rc = main(["dse", "gemm", "--size", "16", "--allow-degraded"])
    assert rc == 0
    assert "quarantined" in capsys.readouterr().out


def test_clean_sweep_exits_zero(capsys):
    rc = main(["dse", "gemm", "--size", "16"])
    assert rc == 0
    assert "auto-DSE of gemm" in capsys.readouterr().out


def test_interrupt_prints_journal_path_and_resume_hint(
    monkeypatch, capsys, tmp_path
):
    journal = tmp_path / "gemm.jsonl"
    original = engine_mod._pick_bottleneck
    calls = {"n": 0}

    def interrupting(graph, latencies, active):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise KeyboardInterrupt
        return original(graph, latencies, active)

    monkeypatch.setattr(engine_mod, "_pick_bottleneck", interrupting)
    rc = main(["dse", "gemm", "--size", "16", "--checkpoint", str(journal)])
    assert rc == 130
    err = capsys.readouterr().err
    assert str(journal) in err
    assert "--resume" in err


def test_resume_flag_replays_and_reports(capsys, tmp_path):
    journal = tmp_path / "gemm.jsonl"
    assert main(["dse", "gemm", "--size", "16", "--checkpoint", str(journal)]) == 0
    capsys.readouterr()
    rc = main(["dse", "gemm", "--size", "16", "--resume", str(journal)])
    assert rc == 0
    assert "replayed" in capsys.readouterr().out


def test_stale_resume_exits_with_diagnostic(capsys, tmp_path):
    journal = tmp_path / "gemm.jsonl"
    assert main(["dse", "gemm", "--size", "16", "--checkpoint", str(journal)]) == 0
    capsys.readouterr()
    rc = main(["dse", "gemm", "--size", "32", "--resume", str(journal)])
    assert rc == 2
    assert "DSE005" in capsys.readouterr().err


def test_candidate_timeout_flag_threads_to_the_engine(monkeypatch):
    seen = {}
    original = engine_mod.auto_dse

    def spy(function, options=None, **kwargs):
        seen["options"] = options
        return original(function, options=options, **kwargs)

    monkeypatch.setattr(engine_mod, "auto_dse", spy)
    rc = main([
        "dse", "gemm", "--size", "16",
        "--candidate-timeout", "30", "--time-budget", "600",
    ])
    assert rc == 0
    options = seen["options"]
    assert isinstance(options, DseOptions)
    assert options.candidate_timeout_s == 30.0
    assert options.time_budget_s == 600.0


def test_time_budget_degrades_gracefully():
    # A zero wall-clock budget expires before the first ladder step: the
    # sweep must stop at the degree-1 baseline, flagged as degraded.
    result = polybench.gemm(16).auto_DSE(options=DseOptions(time_budget_s=0.0))
    assert result.stats.time_budget_hit
    assert result.degraded
    assert any(d.code == "DSE004" for d in result.diagnostics)
    assert result.report.total_cycles > 0
