"""Checkpoint journal tests: resume equivalence, stale rejection, corruption."""

import json

import pytest

from repro.diagnostics import DiagnosticError
from repro.workloads import polybench
from repro.dse.options import DseOptions

pytestmark = pytest.mark.resilience


def fingerprint(result):
    """The fields that define design equality for resume-equivalence checks."""
    return (
        result.report.total_cycles,
        result.report.resources.dsp,
        result.report.resources.lut,
        result.report.resources.ff,
        result.tile_vectors(),
    )


def test_checkpointed_run_matches_plain_run(tmp_path):
    journal = tmp_path / "gemm.jsonl"
    baseline = polybench.gemm(16).auto_DSE()
    checkpointed = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal)))
    assert fingerprint(checkpointed) == fingerprint(baseline)
    assert checkpointed.journal_path == str(journal)
    lines = journal.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "header"
    assert header["function"] == "gemm"
    assert sum(1 for l in lines if json.loads(l)["kind"] == "eval") >= 1


def test_resume_replays_all_candidates(tmp_path):
    journal = tmp_path / "gemm.jsonl"
    first = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal)))
    resumed = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert fingerprint(resumed) == fingerprint(first)
    assert resumed.stats.replayed == first.stats.candidates
    assert resumed.stats.candidates == 0


def test_resume_requires_a_checkpoint_path():
    with pytest.raises(DiagnosticError) as info:
        polybench.gemm(16).auto_DSE(options=DseOptions(resume=True))
    assert info.value.code == "DSE005"


def test_resume_rejects_missing_journal(tmp_path):
    with pytest.raises(DiagnosticError) as info:
        polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(tmp_path / "nope.jsonl"), resume=True))
    assert info.value.code == "DSE005"


def test_resume_rejects_stale_workload(tmp_path):
    journal = tmp_path / "gemm16.jsonl"
    polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal)))
    with pytest.raises(DiagnosticError) as info:
        polybench.gemm(32).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert info.value.code == "DSE005"
    assert "workload_fp" in str(info.value)


def test_resume_rejects_foreign_workload(tmp_path):
    journal = tmp_path / "gemm.jsonl"
    polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal)))
    with pytest.raises(DiagnosticError) as info:
        polybench.bicg(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert info.value.code == "DSE005"


def test_resume_rejects_garbage_header(tmp_path):
    journal = tmp_path / "bad.jsonl"
    journal.write_text("this is not json\n")
    with pytest.raises(DiagnosticError) as info:
        polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert info.value.code == "DSE005"


def test_truncated_trailing_line_is_tolerated(tmp_path):
    journal = tmp_path / "gemm.jsonl"
    baseline = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal)))
    # Simulate a crash mid-write: cut the last record in half.
    lines = journal.read_text().splitlines()
    lines[-1] = lines[-1][: len(lines[-1]) // 2]
    journal.write_text("\n".join(lines) + "\n")
    resumed = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert fingerprint(resumed) == fingerprint(baseline)
    assert any(d.code == "DSE006" for d in resumed.diagnostics)


def test_corrupt_middle_record_is_retried_not_fatal(tmp_path):
    journal = tmp_path / "gemm.jsonl"
    baseline = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal)))
    lines = journal.read_text().splitlines()
    eval_indices = [
        i for i, l in enumerate(lines)
        if l.strip() and json.loads(l).get("kind") == "eval"
    ]
    middle = eval_indices[len(eval_indices) // 2]
    lines[middle] = lines[middle][: len(lines[middle]) // 3]
    journal.write_text("\n".join(lines) + "\n")
    resumed = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert fingerprint(resumed) == fingerprint(baseline)
    # The mangled candidate was re-evaluated for real.
    assert resumed.stats.candidates >= 1
    assert any(d.code == "DSE006" for d in resumed.diagnostics)


def test_journal_survives_interrupted_sweep(tmp_path, monkeypatch):
    import repro.dse.engine as engine_mod

    journal = tmp_path / "gemm.jsonl"
    baseline = polybench.gemm(16).auto_DSE()

    original = engine_mod._pick_bottleneck
    calls = {"n": 0}

    def interrupting(graph, latencies, active):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise KeyboardInterrupt
        return original(graph, latencies, active)

    monkeypatch.setattr(engine_mod, "_pick_bottleneck", interrupting)
    partial = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal)))
    assert partial.stats.interrupted
    assert partial.degraded
    assert any(d.code == "DSE007" for d in partial.diagnostics)

    monkeypatch.setattr(engine_mod, "_pick_bottleneck", original)
    resumed = polybench.gemm(16).auto_DSE(options=DseOptions(checkpoint=str(journal), resume=True))
    assert fingerprint(resumed) == fingerprint(baseline)
    assert resumed.stats.replayed >= 1
