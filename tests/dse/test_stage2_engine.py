"""Unit tests for DSE stage 2 and the bottleneck-oriented engine."""

import numpy as np
import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.affine import interpret
from repro.hls import DEFAULT_DEVICE
from repro.hls.report import speedup
from repro.pipeline import estimate, lower_to_affine
from repro.workloads import polybench, stencils
from repro.dse import auto_dse, plan_stage1
from repro.dse.options import DseOptions
from repro.dse.stage2 import (
    config_directives,
    derive_partitions,
    plan_node_config,
)


class TestNodeConfig:
    def test_parallelism_one_is_pipeline_only(self):
        f = polybench.gemm(16)
        plan = plan_stage1(f)
        config = plan_node_config(f, plan, "s", 1)
        assert config.unrolls == []
        assert config.total_parallelism == 1
        assert config.pipeline_dim in ("i", "j")

    def test_parallelism_distributes_innermost_first(self):
        f = polybench.gemm(16)
        plan = plan_stage1(f)
        config = plan_node_config(f, plan, "s", 8)
        assert config.total_parallelism == 8
        # pipeline dim never gets an unroll factor
        assert all(d != config.pipeline_dim for d, _ in config.unrolls)

    def test_large_parallelism_spills_over_dims(self):
        f = polybench.gemm(16)
        plan = plan_stage1(f)
        config = plan_node_config(f, plan, "s", 64)
        assert config.total_parallelism == 64
        assert len(config.unrolls) >= 2

    def test_tile_vector_matches_order(self):
        f = polybench.bicg(32)
        plan = plan_stage1(f)
        config = plan_node_config(f, plan, "Sq", 16)
        vec = config.tile_vector(plan.orders["Sq"])
        assert len(vec) == 2
        assert np.prod(vec) == 16

    def test_pipeline_dim_is_largest_free(self):
        f = polybench.bicg(32)
        plan = plan_stage1(f)
        config = plan_node_config(f, plan, "Sq", 4)
        assert config.pipeline_dim == "i"  # Sq's only free dim


class TestConfigDirectives:
    def test_gemm_structure(self):
        from repro.affine.ir import AffineForOp

        f = polybench.gemm(16)
        plan = plan_stage1(f)
        configs = {"s": plan_node_config(f, plan, "s", 4)}
        for d in config_directives(f, plan, configs):
            f.schedule.add(d)
        func = lower_to_affine(f)
        loops = [op for op in func.walk() if isinstance(op, AffineForOp)]
        pipelined = [l for l in loops if "pipeline" in l.attributes]
        unrolled = [l for l in loops if "unroll" in l.attributes]
        assert len(pipelined) == 1
        assert unrolled

    def test_semantics_preserved_through_config(self):
        f = polybench.gemm(8)
        plan = plan_stage1(f)
        configs = {"s": plan_node_config(f, plan, "s", 4)}
        for d in config_directives(f, plan, configs):
            f.schedule.add(d)
        arrays = f.allocate_arrays(seed=9)
        ref = {n: a.copy() for n, a in arrays.items()}
        f.reference_execute(ref)
        got = f.allocate_arrays(seed=9)
        interpret(lower_to_affine(f), got)
        assert np.allclose(got["A"], ref["A"], rtol=1e-4)


class TestDerivePartitions:
    def test_unrolled_dims_get_banks(self):
        f = polybench.gemm(16)
        plan = plan_stage1(f)
        configs = {"s": plan_node_config(f, plan, "s", 8)}
        f.reset_schedule()
        for d in config_directives(f, plan, configs):
            f.schedule.add(d)
        partitions = derive_partitions(f)
        assert any(max(v) > 1 for v in partitions.values())

    def test_no_unroll_no_banks(self):
        f = polybench.gemm(16)
        partitions = derive_partitions(f)
        assert all(max(v) == 1 for v in partitions.values())


class TestAutoDse:
    def test_bicg_beats_baseline_substantially(self):
        baseline_fn = polybench.bicg(64, baseline=True)
        base = estimate(baseline_fn)
        f = polybench.bicg(64)
        result = auto_dse(f)
        assert speedup(base, result.report) > 20

    def test_result_feasible(self):
        f = polybench.gemm(64)
        result = auto_dse(f)
        assert result.report.feasible()

    def test_resource_constraint_respected(self):
        f = polybench.gemm(64)
        result = auto_dse(f, options=DseOptions(resource_fraction=0.25))
        quarter = DEFAULT_DEVICE.scaled(0.25)
        assert result.report.resources.dsp <= quarter.dsp
        assert result.report.resources.lut <= quarter.lut

    def test_tighter_budget_not_faster(self):
        f1 = polybench.gemm(64)
        full = auto_dse(f1)
        f2 = polybench.gemm(64)
        tight = auto_dse(f2, options=DseOptions(resource_fraction=0.1))
        assert tight.report.total_cycles >= full.report.total_cycles

    def test_schedule_installed_on_function(self):
        f = polybench.gemm(32)
        result = auto_dse(f)
        assert len(f.schedule) > 0
        assert result.schedule.directives

    def test_dse_semantics_preserved(self):
        f = polybench.bicg(16)
        auto_dse(f)
        arrays = f.allocate_arrays(seed=5)
        ref = {n: a.copy() for n, a in arrays.items()}
        f.reference_execute(ref)
        got = f.allocate_arrays(seed=5)
        interpret(lower_to_affine(f), got)
        for name in arrays:
            assert np.allclose(got[name], ref[name], rtol=1e-4), name

    def test_stencil_dse_semantics_preserved(self):
        f = stencils.seidel(8, steps=2)
        auto_dse(f)
        arrays = f.allocate_arrays(seed=6)
        ref = {n: a.copy() for n, a in arrays.items()}
        f.reference_execute(ref)
        got = f.allocate_arrays(seed=6)
        interpret(lower_to_affine(f), got)
        assert np.allclose(got["A"], ref["A"], rtol=1e-4)

    def test_tile_vectors_reported(self):
        f = polybench.gemm(64)
        result = auto_dse(f)
        vectors = result.tile_vectors()
        assert "s" in vectors
        assert len(vectors["s"]) == 3

    def test_parallelism_metric(self):
        f = polybench.gemm(64)
        result = auto_dse(f)
        assert result.parallelism >= 1

    def test_dse_time_and_evaluations_recorded(self):
        f = polybench.gemm(32)
        result = auto_dse(f)
        assert result.dse_time_s > 0
        assert result.evaluations >= 1

    def test_multi_node_bottleneck_balance(self):
        """3MM: all three products end up optimized, not just the first."""
        f = polybench.mm3(32)
        result = auto_dse(f)
        parallels = [result.configs[n].total_parallelism for n in ("S1", "S2", "S3")]
        assert min(parallels) > 1, f"bottleneck search starved a node: {parallels}"
