"""Search-quality tests: the ladder vs. exhaustive enumeration.

On kernels small enough to enumerate the whole (power-of-two
parallelism) design space, the bottleneck ladder must land within a
small factor of the true optimum -- the paper's claim that the
two-stage search "finds high-performance design choices successfully"
despite exploring a tiny fraction of the space.
"""

import itertools

import pytest

from repro.dse import auto_dse, plan_stage1
from repro.dse.stage2 import (
    config_directives,
    derive_partitions,
    plan_node_config,
    stage1_program,
)
from repro.hls.estimator import HlsEstimator
from repro.hls.device import DEFAULT_DEVICE
from repro.affine.lowering import lower_program
from repro.polyir.program import PolyProgram
from repro.workloads import polybench

DEGREES = (1, 2, 4, 8, 16, 32)


def exhaustive_best(factory, size):
    """Evaluate every per-node power-of-two parallelism combination."""
    probe = factory(size)
    nodes = [c.name for c in probe.computes]
    estimator = HlsEstimator()
    best_cycles = None
    evaluated = 0
    for combo in itertools.product(DEGREES, repeat=len(nodes)):
        function = factory(size)
        plan = plan_stage1(function)
        program = stage1_program(function, plan)
        configs = {
            name: plan_node_config(function, plan, name, degree, program=program)
            for name, degree in zip(nodes, combo)
        }
        function.reset_schedule()
        for directive in function.structural_directives():
            function.schedule.add(directive)
        for directive in config_directives(function, plan, configs):
            function.schedule.add(directive)
        for name, factors in derive_partitions(function).items():
            if any(f > 1 for f in factors):
                target = next(p for p in function.placeholders() if p.name == name)
                target.partition(list(factors), "cyclic")
        report = estimator.estimate(
            lower_program(PolyProgram(function).apply_schedule())
        )
        evaluated += 1
        if report.feasible() and (best_cycles is None or report.total_cycles < best_cycles):
            best_cycles = report.total_cycles
    return best_cycles, evaluated


@pytest.mark.parametrize("name,size", [("gemm", 64), ("bicg", 64)])
def test_ladder_close_to_exhaustive(name, size):
    factory = polybench.SUITE[name]
    best, space = exhaustive_best(factory, size)
    assert best is not None

    function = factory(size)
    result = auto_dse(function)
    ratio = result.report.total_cycles / best
    assert ratio <= 1.6, (
        f"{name}: ladder found {result.report.total_cycles} cycles vs "
        f"exhaustive best {best} over {space} points (ratio {ratio:.2f})"
    )


def test_ladder_evaluates_fraction_of_space():
    """The point of the two-stage search: few evaluations, good design."""
    function = polybench.mm2(64)
    result = auto_dse(function)
    space_size = len(DEGREES) ** len(function.computes)
    assert result.evaluations < space_size / 1.5
