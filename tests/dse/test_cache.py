"""The memoized DSE evaluation engine: cached == uncached, bit for bit."""

import pytest

from repro.affine import print_func
from repro.affine.lowering import lower_program, lower_program_incremental
from repro.dse import auto_dse
from repro.dse.engine import _node_latencies
from repro.dse.stats import DseStats
from repro.hls.estimator import HlsEstimator
from repro.hls.report import speedup
from repro.polyir.program import PolyProgram
from repro import workloads
from repro.workloads import polybench
from repro.dse.options import DseOptions

CACHE_WORKLOADS = ["gemm", "bicg", "mm2", "mm3", "gesummv"]


def _schedule_fps(result):
    return [d.fingerprint() for d in result.schedule]


class TestCachedEqualsUncached:
    """auto_dse(f) and auto_dse(f, options=DseOptions(cache=False)) are interchangeable."""

    @pytest.mark.parametrize("name", CACHE_WORKLOADS)
    def test_identical_results(self, name):
        factory = getattr(polybench, name)
        uncached = auto_dse(factory(64), options=DseOptions(cache=False))
        cached = auto_dse(factory(64), options=DseOptions(cache=True))
        assert cached.report == uncached.report
        assert _schedule_fps(cached) == _schedule_fps(uncached)
        assert cached.tile_vectors() == uncached.tile_vectors()
        assert cached.evaluations == uncached.evaluations
        # The installed schedules lower to byte-identical MLIR.
        assert print_func(cached.function.lower()) == print_func(
            uncached.function.lower()
        )


class TestIncrementalLowering:
    """Per-nest lowering splices exactly what a full lowering produces."""

    @pytest.mark.parametrize("name", workloads.names(kind="function"))
    def test_equivalent_to_full_lowering(self, name):
        function = workloads.get(name)
        program = PolyProgram(function).apply_schedule()
        full = print_func(lower_program(program))
        incremental = print_func(lower_program_incremental(program, cache={}))
        assert incremental == full

    def test_unchanged_nests_are_reused_by_reference(self):
        function = polybench.mm2(32)
        cache = {}
        program = PolyProgram(function).apply_schedule()
        first = lower_program_incremental(program, cache=cache)
        second = lower_program_incremental(
            PolyProgram(function).apply_schedule(), cache=cache
        )
        assert [op for op in first.body] == [op for op in second.body]

    def test_cache_counters_feed_stats(self):
        function = polybench.gemm(32)
        cache = {}
        stats = DseStats()
        program = PolyProgram(function).apply_schedule()
        lower_program_incremental(program, cache=cache, stats=stats)
        assert stats.lowering_cache_misses >= 1
        lower_program_incremental(
            PolyProgram(function).apply_schedule(), cache=cache, stats=stats
        )
        assert stats.lowering_cache_hits >= 1


class TestSpeedupVs:
    def test_speedup_vs_delegates_to_report_speedup(self):
        function = polybench.gemm(64)
        baseline = function.estimate()
        result = auto_dse(function)
        assert result.speedup_vs(baseline) == speedup(baseline, result.report)
        assert result.speedup_vs(baseline) > 1.0


class TestNodeLatencies:
    def test_estimation_cannot_mutate_parent_attributes(self):
        function = polybench.mm2(32)
        result = auto_dse(function)
        func_op = lower_program(PolyProgram(function).apply_schedule())
        before = {
            name: scheme
            for name, scheme in func_op.attributes.get("partitions", {}).items()
        }
        estimator = HlsEstimator()

        def hostile_estimate(shell):
            # A consumer scribbling on the shell must not reach the parent.
            shell.attributes.setdefault("partitions", {})["__corrupted__"] = object()
            return estimator.estimate(shell)

        latencies = _node_latencies(func_op, hostile_estimate)
        assert latencies  # sanity: something was attributed
        assert "__corrupted__" not in func_op.attributes.get("partitions", {})
        assert func_op.attributes.get("partitions", {}) == before


class TestDseStats:
    def test_result_carries_stats(self):
        result = auto_dse(polybench.gemm(64))
        stats = result.stats
        assert stats is not None
        assert stats.cache_enabled
        assert stats.evaluations == result.evaluations
        assert stats.total_s > 0
        assert stats.lowerings >= 1
        assert stats.estimations >= stats.lowerings
        assert set(stats.isl_counters) == {
            "projection", "emptiness", "bounds", "implied",
        }
        assert "dse profile" in stats.summary()

    def test_uncached_run_reports_cache_off(self):
        result = auto_dse(polybench.gemm(32), options=DseOptions(cache=False))
        stats = result.stats
        assert not stats.cache_enabled
        # No layer may claim a hit when caching is disabled.
        assert stats.eval_cache_hits == 0
        assert stats.design_cache_hits == 0
        assert stats.lowering_cache_hits == 0
        assert stats.report_hits == 0
        assert stats.config_cache_hits == 0
        assert stats.partition_cache_hits == 0
        assert all(hits == 0 for hits, _ in stats.isl_counters.values())


@pytest.mark.perfsmoke
def test_perfsmoke_cached_dse():
    """One cached DSE run: caching engages, the search does not shrink."""
    uncached = auto_dse(polybench.mm2(64), options=DseOptions(cache=False))
    cached = auto_dse(polybench.mm2(64), options=DseOptions(cache=True))
    stats = cached.stats
    layer_hits = (
        stats.eval_cache_hits
        + stats.design_cache_hits
        + stats.lowering_cache_hits
        + stats.report_hits
        + stats.config_cache_hits
        + stats.partition_cache_hits
    )
    assert layer_hits > 0
    assert cached.evaluations <= uncached.evaluations
    assert cached.report == uncached.report
