"""Differential suite: Pareto frontiers are mode-independent.

The determinism contract of :mod:`repro.dse.pareto`: the frontier is a
pure function of the scored candidate set, so every sweep mode that
scores the same candidates -- surrogate-guided or exhaustive, cached or
uncached, sequential or sharded, fresh or resumed from a checkpoint
journal, fault-injected or clean -- reconstructs a bit-identical
frontier.  This suite runs each mode pair and compares, in the style of
``tests/dse/test_reference_differential.py``.

It also pins the other half of the contract: turning the frontier
machinery *on* must not change the classic single-objective result
(the ladder trajectory is shared; enrichment only adds evaluations
after it).
"""

import pytest

from repro.dse import auto_dse
from repro.dse.options import DseOptions
from repro.dse.parallel import (
    build_workload,
    default_sweep_specs,
    run_sharded_sweep,
)
from repro.faults import Fault, FaultPlan
from repro.workloads import polybench

WORKLOADS = ("gemm", "bicg", "mm2", "mm3", "gesummv")
SIZE = 16


def _frontier(result):
    assert result.frontier is not None, "frontier mode returned no frontier"
    return [point.to_record() for point in result.frontier]


def _run(name, **changes):
    options = DseOptions(**{"objective": "pareto", "cache": False, **changes})
    return auto_dse(getattr(polybench, name)(SIZE), options=options)


class TestSurrogateParity:
    """The tentpole guarantee: surrogate on == exhaustive, bit for bit."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_frontier_identical_surrogate_on_off(self, name):
        guided = _run(name, surrogate=True)
        exhaustive = _run(name, surrogate=False)
        assert _frontier(guided) == _frontier(exhaustive)
        assert guided.report == exhaustive.report
        assert guided.tile_vectors() == exhaustive.tile_vectors()

    def test_surrogate_actually_skips_work(self):
        guided = _run("gemm", surrogate=True)
        exhaustive = _run("gemm", surrogate=False)
        assert guided.stats.surrogate_skips > 0
        assert guided.stats.estimations < exhaustive.stats.estimations

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_weighted_selects_a_frontier_member(self, name):
        result = _run(name, objective="weighted:latency=1,dsp=0.25")
        records = _frontier(result)
        selected = (
            result.report.total_cycles,
            result.report.resources.dsp,
        )
        assert selected in [(r["cycles"], r["dsp"]) for r in records]


class TestCacheParity:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_cached_matches_uncached(self, name):
        uncached = _run(name, cache=False)
        cached = _run(name, cache=True)
        assert _frontier(cached) == _frontier(uncached)


class TestResumedParity:
    def test_resumed_sweep_reconstructs_the_frontier(self, tmp_path):
        journal = tmp_path / "pareto.jsonl"
        first = _run("gemm", checkpoint=str(journal))
        resumed = _run("gemm", checkpoint=str(journal), resume=True)
        assert _frontier(resumed) == _frontier(first)
        assert resumed.report == first.report
        # The resumed run replays candidates instead of re-estimating.
        assert resumed.stats.replayed > 0

    def test_resumed_weighted_selects_identically(self, tmp_path):
        journal = tmp_path / "weighted.jsonl"
        spec = "weighted:latency=1,dsp=0.5"
        first = _run("mm2", objective=spec, checkpoint=str(journal))
        resumed = _run(
            "mm2", objective=spec, checkpoint=str(journal), resume=True
        )
        assert _frontier(resumed) == _frontier(first)
        assert resumed.report == first.report
        assert resumed.tile_vectors() == first.tile_vectors()


class TestShardedParity:
    @pytest.mark.parallel
    def test_sharded_matches_sequential(self):
        sweep = run_sharded_sweep(
            default_sweep_specs(size=SIZE, objective="pareto"), jobs=2
        )
        assert sweep.ok, sweep.failures
        for shard in sweep.shards:
            sequential = auto_dse(
                build_workload(shard.spec.workload, SIZE),
                options=DseOptions(objective="pareto", cache=True),
            )
            assert _frontier(shard.result) == _frontier(sequential), (
                shard.spec.workload
            )


class TestFaultInjectedParity:
    @pytest.mark.resilience
    def test_transient_faults_converge_to_the_clean_frontier(self):
        clean = _run("gemm")
        plan = FaultPlan([Fault("transient", 2, count=2)])
        faulted = _run("gemm", fault_plan=plan)
        assert plan.fired, "fault plan never fired; test is vacuous"
        assert _frontier(faulted) == _frontier(clean)


class TestSingleObjectiveUnchanged:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_pareto_mode_returns_the_single_mode_design(self, name):
        single = auto_dse(
            getattr(polybench, name)(SIZE), options=DseOptions(cache=False)
        )
        pareto = _run(name)
        assert pareto.report == single.report
        assert pareto.tile_vectors() == single.tile_vectors()
        assert [d.fingerprint() for d in pareto.schedule] == [
            d.fingerprint() for d in single.schedule
        ]

    def test_single_mode_has_no_frontier_and_no_enrichment(self):
        result = auto_dse(
            polybench.gemm(SIZE), options=DseOptions(cache=False)
        )
        assert result.objective == "single"
        assert result.frontier is None
        assert result.stats.pareto_candidates == 0
        assert result.stats.surrogate_skips == 0
