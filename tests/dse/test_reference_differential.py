"""Differential suite: optimized isl substrate vs ``REPRO_ISL_REFERENCE=1``.

The optimized kernels (vectorized Fourier-Motzkin, hash-consed atoms,
compiled bound evaluators, vectorized point/bank enumeration) promise
*bit identity* with the pure-Python reference path -- same reports,
same schedules, same tile vectors, same evaluation counts -- across
every sweep mode the DSE engine supports: cached, uncached, sharded,
speculative, and fault-injected.  This suite runs each mode both ways
and compares.

The fixture sets the ``REPRO_ISL_REFERENCE`` environment variable in
addition to flipping the in-process flag so spawned worker processes
(sharded and speculative modes) inherit the reference mode.
"""

import pytest

from repro.dse import auto_dse
from repro.dse.options import DseOptions
from repro.dse.parallel import default_sweep_specs, run_sharded_sweep
from repro.faults import Fault, FaultPlan
from repro.isl import intern as _intern
from repro.isl import memo as _memo
from repro.workloads import polybench

WORKLOADS = ("gemm", "bicg", "mm2", "mm3", "gesummv")
SIZE = 16


def _fingerprint(result):
    return (
        result.report,
        result.tile_vectors(),
        result.evaluations,
        [d.fingerprint() for d in result.schedule],
        [
            (q.parallelism, q.bank_cap, q.diagnostic.code)
            for q in result.quarantine
        ],
    )


def _both_modes(run, monkeypatch):
    """``(fast, reference)`` results of ``run()`` under each mode."""
    _memo.clear_all()
    was_reference = _intern.set_reference_mode(False)
    try:
        fast = run()
        monkeypatch.setenv("REPRO_ISL_REFERENCE", "1")
        _intern.set_reference_mode(True)
        _memo.clear_all()  # no cross-mode cache reuse: recompute honestly
        reference = run()
    finally:
        _intern.set_reference_mode(was_reference)
    return fast, reference


class TestSingleRunModes:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_uncached(self, name, monkeypatch):
        factory = getattr(polybench, name)
        fast, reference = _both_modes(
            lambda: auto_dse(factory(SIZE), options=DseOptions(cache=False)),
            monkeypatch,
        )
        assert _fingerprint(fast) == _fingerprint(reference)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_cached(self, name, monkeypatch):
        factory = getattr(polybench, name)
        fast, reference = _both_modes(
            lambda: auto_dse(factory(SIZE), options=DseOptions(cache=True)),
            monkeypatch,
        )
        assert _fingerprint(fast) == _fingerprint(reference)


class TestParallelModes:
    @pytest.mark.parallel
    def test_sharded_sweep(self, monkeypatch):
        def run():
            sweep = run_sharded_sweep(default_sweep_specs(size=SIZE), jobs=2)
            assert sweep.ok, sweep.failures
            return {
                shard.spec.workload: _fingerprint(shard.result)
                for shard in sweep.shards
            }

        fast, reference = _both_modes(run, monkeypatch)
        assert fast == reference

    @pytest.mark.parallel
    def test_speculative_evaluation(self, monkeypatch):
        def run():
            result = auto_dse(polybench.bicg(SIZE), options=DseOptions(jobs=2))
            assert result.stats.speculation_jobs == 2
            return _fingerprint(result)

        fast, reference = _both_modes(run, monkeypatch)
        assert fast == reference


class TestFaultInjectedMode:
    @pytest.mark.resilience
    def test_transient_faults(self, monkeypatch):
        def run():
            plan = FaultPlan([Fault("transient", 2, count=2)])
            result = auto_dse(
                polybench.gemm(SIZE), options=DseOptions(fault_plan=plan)
            )
            return _fingerprint(result)

        fast, reference = _both_modes(run, monkeypatch)
        assert fast == reference
