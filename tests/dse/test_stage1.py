"""Unit tests for DSE stage 1: dependence-aware code transformation."""

import pytest

from repro.dsl import Function, compute, placeholder, var
from repro.dsl.schedule import Interchange, Skew
from repro.polyir import PolyProgram
from repro.workloads import polybench, stencils
from repro.dse.analysis import carried_dims, carried_for_statement, free_dims
from repro.dse.stage1 import plan_stage1


class TestStatementAnalysis:
    def test_gemm_reduction_carried(self):
        f = polybench.gemm(8)
        stmt = PolyProgram(f).statement("s")
        assert carried_dims(stmt) == ["k"]
        assert free_dims(stmt) == ["i", "j"]

    def test_analysis_follows_transformation(self):
        """Re-analysis on a transformed statement sees the new dims."""
        from repro.polyir import interchange

        f = polybench.gemm(8)
        stmt = PolyProgram(f).statement("s")
        swapped = interchange(stmt, "k", "j")
        assert carried_dims(swapped) == ["k"]
        assert free_dims(swapped) == ["j", "i"]

    def test_seidel_fully_carried(self):
        f = stencils.seidel(8, steps=2)
        stmt = PolyProgram(f).statement("S")
        assert free_dims(stmt) == []


class TestStage1Polybench:
    def test_gemm_keeps_reduction_outer(self):
        f = polybench.gemm(8)
        plan = plan_stage1(f)
        order = plan.orders["s"]
        assert order[0] == "k"
        assert set(order[1:]) == {"i", "j"}
        assert not plan.skewed["s"]

    def test_bicg_conflicting_orders(self):
        """Sq keeps j outward, Ss keeps i outward (split-interchange)."""
        f = polybench.bicg(8)
        plan = plan_stage1(f)
        assert plan.orders["Sq"] == ["j", "i"]
        assert plan.orders["Ss"] == ["i", "j"]
        assert plan.free["Sq"] == ["i"]
        assert plan.free["Ss"] == ["j"]

    def test_bicg_conservative_fusion(self):
        """Sq and Ss share no data -> merged back into one group."""
        f = polybench.bicg(8)
        plan = plan_stage1(f)
        assert ["Sq", "Ss"] in plan.fused_groups

    def test_elementwise_untouched(self):
        with Function("ew") as f:
            i = var("i", 0, 8)
            A = placeholder("A", (8,))
            B = placeholder("B", (8,))
            compute("S", [i], A(i) * 2.0, B(i))
        plan = plan_stage1(f)
        assert plan.orders["S"] == ["i"]
        assert plan.directives == []


class TestStage1Stencils:
    def test_seidel_gets_skewed(self):
        f = stencils.seidel(8, steps=2)
        plan = plan_stage1(f)
        assert plan.skewed["S"]
        assert any(isinstance(d, Skew) for d in plan.directives)
        # after skewing, some dim must be free
        assert plan.free["S"], "skewing must create a dependence-free dim"

    def test_skewed_statement_semantics_preserved(self):
        import numpy as np

        from repro.pipeline import lower_to_affine
        from repro.affine import interpret
        from repro.dse.stage2 import config_directives, plan_node_config

        f = stencils.seidel(8, steps=2)
        plan = plan_stage1(f)
        configs = {"S": plan_node_config(f, plan, "S", 1)}
        f.reset_schedule()
        for d in config_directives(f, plan, configs):
            f.schedule.add(d)
        arrays = f.allocate_arrays(seed=11)
        ref = {n: a.copy() for n, a in arrays.items()}
        f.reference_execute(ref)
        got = f.allocate_arrays(seed=11)
        interpret(lower_to_affine(f), got)
        assert np.allclose(got["A"], ref["A"], rtol=1e-4)

    def test_heat1d_restructured(self):
        f = stencils.heat_1d(16, steps=4)
        plan = plan_stage1(f)
        # time loop carries everything; skew (t, i) frees a wavefront dim
        assert plan.free["S"], "heat-1d needs a free dim after stage 1"


class TestStage1Image:
    def test_blur_stages_fusable(self):
        """Sh writes tmp, Sv reads tmp at offsets including +1: not fusable."""
        from repro.workloads import image

        f = image.blur(16)
        plan = plan_stage1(f)
        assert ["Sh", "Sv"] not in plan.fused_groups

    def test_independent_gradients_fusable(self):
        from repro.workloads import image

        f = image.edge_detect(16)
        plan = plan_stage1(f)
        flat = [g for g in plan.fused_groups if set(g) >= {"Sgx", "Sgy"}]
        assert flat, "gx and gy read the same input and may fuse"


class TestInterchangePlanning:
    def test_idempotent_when_already_ordered(self):
        f = polybench.gemm(8)
        plan1 = plan_stage1(f)
        # planning again from scratch gives the same orders
        f2 = polybench.gemm(8)
        plan2 = plan_stage1(f2)
        assert plan1.orders == plan2.orders

    def test_directives_are_replayable(self):
        f = polybench.bicg(8)
        plan = plan_stage1(f)
        program = PolyProgram(f)
        for d in plan.directives:
            program.apply_directive(d)
        assert program.statement("Sq").loop_order == plan.orders["Sq"]
        assert program.statement("Ss").loop_order == plan.orders["Ss"]
