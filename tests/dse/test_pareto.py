"""Unit tests for multi-objective DSE: specs, dominance, frontiers.

The property-based dominance tests drive :class:`ParetoFrontier` with
seeded random vector sets and check the structural invariants the
engine's determinism contract rests on: no member dominates another,
every rejected point is dominated by (or duplicates) a member, and
membership is independent of insertion order.
"""

import random

import pytest

from repro.dse import auto_dse
from repro.dse.options import DseOptions
from repro.dse.pareto import (
    AXES,
    Objective,
    ParetoFrontier,
    ParetoPoint,
    dominates,
    frontier_summary,
    parse_objective,
)
from repro.dse.engine import DseResult
from repro.dse.stage2 import NodeConfig
from repro.hls.report import LoopReport, Resources, SynthesisReport
from repro.hls.device import DEFAULT_DEVICE
from repro.workloads import polybench


class TestParseObjective:
    def test_single_default(self):
        objective = parse_objective("single")
        assert objective.mode == "single"
        assert not objective.wants_frontier
        assert objective.canonical == "single"

    def test_pareto_default_axes(self):
        objective = parse_objective("pareto")
        assert objective.mode == "pareto"
        assert objective.axes == ("latency", "dsp")
        assert objective.wants_frontier
        assert objective.canonical == "pareto:latency,dsp"

    def test_pareto_axes_normalized_to_canonical_order(self):
        objective = parse_objective("pareto:dsp,latency,bram")
        assert objective.axes == ("latency", "dsp", "bram")
        assert objective.canonical == "pareto:latency,dsp,bram"

    def test_pareto_all_axes(self):
        objective = parse_objective("pareto:" + ",".join(AXES))
        assert objective.axes == AXES

    def test_weighted(self):
        objective = parse_objective("weighted:dsp=0.25,latency=1")
        assert objective.mode == "weighted"
        assert objective.axes == ("latency", "dsp")
        assert objective.weights == (1.0, 0.25)
        assert objective.canonical == "weighted:latency=1,dsp=0.25"

    def test_objective_passthrough(self):
        objective = Objective(mode="pareto")
        assert parse_objective(objective) is objective

    def test_canonical_round_trips(self):
        for spec in (
            "single",
            "pareto:latency,dsp,bram",
            "weighted:latency=1,dsp=0.5",
        ):
            parsed = parse_objective(spec)
            assert parse_objective(parsed.canonical) == parsed

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("", "non-empty string"),
            (None, "non-empty string"),
            ("bogus", "unknown objective mode"),
            ("single:latency", "takes no axes"),
            ("pareto:watts", "unknown objective axis"),
            ("pareto:latency,latency", "duplicate objective axis"),
            ("pareto: ", "unknown objective axis"),
            ("weighted", "needs axis=weight pairs"),
            ("weighted:latency", "needs '=weight'"),
            ("weighted:latency=zero", "invalid weight"),
            ("weighted:latency=0", "must be > 0"),
            ("weighted:latency=-1", "must be > 0"),
            ("weighted:latency=1,latency=2", "duplicate objective axis"),
        ],
    )
    def test_rejects(self, spec, match):
        with pytest.raises(ValueError, match=match):
            parse_objective(spec)

    def test_options_validate_rejects_bad_objective(self):
        with pytest.raises(ValueError, match="unknown objective mode"):
            DseOptions(objective="best-ever").validate()


class TestDominates:
    def test_strict(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 3), (3, 1))
        assert not dominates((2, 2), (1, 1))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="lengths differ"):
            dominates((1,), (1, 2))


def _point(key, values):
    return ParetoPoint(
        key=key,
        parallelism=(("s", 1),),
        bank_cap=128,
        values=tuple(values),
        cycles=values[0],
        dsp=values[-1],
        lut=0,
        ff=0,
        bram_bits=0,
        power_w=0.0,
    )


class TestFrontierProperties:
    """Seeded property-based checks of the dominance invariants."""

    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_hold(self, seed):
        rng = random.Random(seed)
        points = [
            _point(f"k{i:03d}", (rng.randrange(1, 8), rng.randrange(1, 8)))
            for i in range(60)
        ]
        frontier = ParetoFrontier()
        for point in points:
            frontier.insert(point)
        members = frontier.points()
        # 1. No member dominates (or duplicates) another.
        for a in members:
            for b in members:
                if a is not b:
                    assert not dominates(a.values, b.values), (a, b)
                    assert a.values != b.values or a.key != b.key
        # 2. Every submitted point is on the frontier, or dominated by
        #    (or vector-equal to) some member.
        member_keys = {m.key for m in members}
        for point in points:
            if point.key in member_keys:
                continue
            assert any(
                dominates(m.values, point.values) or m.values == point.values
                for m in members
            ), point
        # 3. The pruned counter accounts for every eviction/rejection.
        assert frontier.pruned >= len(points) - len(members)

    @pytest.mark.parametrize("seed", range(8))
    def test_membership_is_insertion_order_independent(self, seed):
        rng = random.Random(seed)
        points = [
            _point(f"k{i:03d}", (rng.randrange(1, 6), rng.randrange(1, 6)))
            for i in range(40)
        ]
        frontier_a = ParetoFrontier()
        for point in points:
            frontier_a.insert(point)
        shuffled = list(points)
        rng.shuffle(shuffled)
        frontier_b = ParetoFrontier()
        for point in shuffled:
            frontier_b.insert(point)
        assert frontier_a.points() == frontier_b.points()

    def test_equal_vectors_keep_smallest_key(self):
        for order in ((0, 1), (1, 0)):
            frontier = ParetoFrontier()
            pair = [_point("aaa", (2, 2)), _point("zzz", (2, 2))]
            for index in order:
                frontier.insert(pair[index])
            assert [m.key for m in frontier.points()] == ["aaa"]
            assert frontier.pruned == 1


class TestRecords:
    def test_point_record_round_trip(self):
        point = ParetoPoint(
            key="cand", parallelism=(("S1", 4), ("S2", 8)), bank_cap=16,
            values=(100, 12), cycles=100, dsp=12, lut=34, ff=56,
            bram_bits=78, power_w=0.125,
        )
        assert ParetoPoint.from_record(point.to_record()) == point

    def test_frontier_records_round_trip(self):
        frontier = ParetoFrontier()
        frontier.insert(_point("a", (1, 5)))
        frontier.insert(_point("b", (5, 1)))
        frontier.insert(_point("c", (9, 9)))  # dominated, pruned
        rebuilt = ParetoFrontier.from_records(frontier.to_records())
        assert rebuilt.points() == frontier.points()

    def test_summary_is_deterministic_text(self):
        objective = parse_objective("pareto")
        points = [_point("a", (1, 5)), _point("b", (5, 1))]
        text = frontier_summary(points, objective)
        assert "2 designs" in text and "latency,dsp" in text
        assert text == frontier_summary(points, objective)


def _report(cycles, ii=1, dsp=0):
    loops = [
        LoopReport(iterator="i", trip_count=8, pipelined=True,
                   achieved_ii=ii, depth=3, latency=cycles)
    ]
    return SynthesisReport(
        function_name="f", device=DEFAULT_DEVICE, clock_ns=10.0,
        total_cycles=cycles, resources=Resources(dsp=dsp), loops=loops,
    )


class TestParallelismMetric:
    """Regression: parallelism is the *product* across node configs."""

    def test_gemm_known_design(self):
        result = auto_dse(polybench.gemm(16), options=DseOptions(cache=False))
        assert result.parallelism == 32.0

    def test_multi_kernel_product_not_max(self):
        # mm2 has two compute nodes; under the old max() the metric
        # collapsed to the larger node's 32 instead of 32 * 32.
        result = auto_dse(polybench.mm2(16), options=DseOptions(cache=False))
        assert result.parallelism == 1024.0
        per_node = [c.total_parallelism for c in result.configs.values()]
        assert result.parallelism == (
            per_node[0] * per_node[1] / (result.report.worst_ii() or 1)
        )

    def test_constructed_two_config_case(self):
        configs = {
            "S1": NodeConfig(name="S1", pipeline_dim="i",
                             unrolls=[("i", 4)]),
            "S2": NodeConfig(name="S2", pipeline_dim="i",
                             unrolls=[("i", 8)]),
        }
        result = DseResult(
            function=None, report=_report(100, ii=2), schedule=[],
            plan=None, configs=configs, dse_time_s=0.0, evaluations=1,
        )
        # product(4, 8) / II 2 -- max(4, 8) / 2 would say 4.0.
        assert result.parallelism == 16.0
