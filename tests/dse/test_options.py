"""DseOptions consolidation: parity with the legacy kwarg surface.

The deprecation contract (``docs/api.md``): every legacy call form --
loose keyword arguments on ``auto_dse``/``Function.auto_DSE``, the
positional device argument, the pre-unification CLI spellings -- keeps
working, behaves *identically* to the ``DseOptions`` form, and warns
exactly once per call.
"""

import warnings

import pytest

from repro.dse import MAX_PARALLELISM, DseOptions, auto_dse
from repro.hls import DEFAULT_DEVICE
from repro.workloads import polybench


def _outcome(result):
    return (
        result.report,
        result.tile_vectors(),
        result.evaluations,
        result.parallelism,
    )


def _legacy(call):
    """Run a deprecated call form, asserting exactly one warning."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = call()
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1, [str(w.message) for w in caught]
    return result, str(deprecations[0].message)


class TestParity:
    def test_kwargs_and_options_identical(self):
        legacy, _ = _legacy(
            lambda: auto_dse(polybench.gemm(16), resource_fraction=0.5, cache=False)
        )
        modern = auto_dse(
            polybench.gemm(16),
            options=DseOptions(resource_fraction=0.5, cache=False),
        )
        assert _outcome(legacy) == _outcome(modern)

    def test_default_options_match_no_options(self):
        bare = auto_dse(polybench.gemm(16))
        explicit = auto_dse(polybench.gemm(16), options=DseOptions())
        assert _outcome(bare) == _outcome(explicit)

    def test_method_kwargs_and_options_identical(self):
        legacy, _ = _legacy(
            lambda: polybench.gemm(16).auto_DSE(resource_fraction=0.5)
        )
        modern = polybench.gemm(16).auto_DSE(
            options=DseOptions(resource_fraction=0.5)
        )
        assert _outcome(legacy) == _outcome(modern)

    def test_positional_device_matches_options_device(self):
        legacy, message = _legacy(lambda: auto_dse(polybench.gemm(16), DEFAULT_DEVICE))
        modern = auto_dse(polybench.gemm(16), options=DseOptions(device=DEFAULT_DEVICE))
        assert _outcome(legacy) == _outcome(modern)
        assert "DseOptions" in message


class TestWarningDiscipline:
    def test_function_kwargs_warn_once_naming_all_kwargs(self):
        _, message = _legacy(
            lambda: auto_dse(polybench.gemm(16), cache=False, resource_fraction=0.5)
        )
        assert "cache" in message and "resource_fraction" in message
        assert "DseOptions" in message

    def test_method_kwargs_warn_once(self):
        _, message = _legacy(lambda: polybench.gemm(16).auto_DSE(cache=False))
        assert "auto_DSE" in message

    def test_options_form_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            auto_dse(polybench.gemm(16), options=DseOptions())
            polybench.gemm(16).auto_DSE(options=DseOptions(cache=False))


class TestErrors:
    def test_mixing_options_and_kwargs_raises(self):
        with pytest.raises(TypeError, match="not both"):
            auto_dse(polybench.gemm(16), options=DseOptions(), cache=False)
        with pytest.raises(TypeError, match="not both"):
            polybench.gemm(16).auto_DSE(options=DseOptions(), cache=False)

    def test_unknown_kwarg_raises_like_the_old_signature(self):
        # A typo'd kwarg is an error, not a deprecation: no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(
                TypeError, match="unexpected keyword argument 'bogus'"
            ):
                auto_dse(polybench.gemm(16), bogus=1)

    @pytest.mark.parametrize(
        "changes, match",
        [
            ({"resource_fraction": 0.0}, "resource_fraction must be > 0"),
            ({"clock_ns": -1.0}, "clock_ns must be > 0"),
            ({"max_parallelism": 0}, "max_parallelism must be >= 1"),
            ({"candidate_timeout_s": -1.0}, "candidate_timeout_s must be >= 0"),
            ({"time_budget_s": -1.0}, "deadline budget must be >= 0"),
            ({"jobs": 0}, "jobs must be >= 1"),
        ],
    )
    def test_validate_messages(self, changes, match):
        with pytest.raises(ValueError, match=match):
            DseOptions(**changes).validate()

    def test_engine_rejects_invalid_options_identically(self):
        with pytest.raises(ValueError, match="resource_fraction must be > 0"):
            auto_dse(
                polybench.gemm(16), options=DseOptions(resource_fraction=-1.0)
            )


class TestDataclassSurface:
    def test_defaults(self):
        options = DseOptions()
        assert options.resource_fraction == 1.0
        assert options.max_parallelism == MAX_PARALLELISM
        assert options.cache is True
        assert options.jobs is None

    def test_replace_returns_modified_copy(self):
        base = DseOptions()
        tweaked = base.replace(cache=False, jobs=4)
        assert tweaked.cache is False and tweaked.jobs == 4
        assert base.cache is True and base.jobs is None

    def test_from_kwargs_seeds_from_base(self):
        base = DseOptions(resource_fraction=0.5)
        options = DseOptions.from_kwargs(base, cache=False)
        assert options.resource_fraction == 0.5
        assert options.cache is False

    def test_from_kwargs_rejects_unknown(self):
        with pytest.raises(
            TypeError, match="unexpected keyword argument 'nope'"
        ):
            DseOptions.from_kwargs(nope=1)

    def test_field_names_cover_legacy_surface(self):
        names = set(DseOptions.field_names())
        assert {
            "device", "resource_fraction", "clock_ns", "max_parallelism",
            "keep_existing_schedule", "cache", "checkpoint", "resume",
            "candidate_timeout_s", "time_budget_s", "fault_plan", "jobs",
            "objective", "surrogate",
        } == names

    def test_exported_from_package_roots(self):
        import repro
        import repro.dse

        assert repro.DseOptions is DseOptions
        assert repro.dse.DseOptions is DseOptions
