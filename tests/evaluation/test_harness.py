"""Unit tests for the experiment harness plumbing."""

import pytest

from repro.evaluation import ALL_EXPERIMENTS, fig2, pareto_front, table3
from repro.evaluation.frameworks import (
    FRAMEWORKS,
    fmt_tiles,
    format_table,
    run_framework,
)
from repro.workloads import polybench


class TestRunFramework:
    def test_unknown_framework_rejected(self):
        with pytest.raises(ValueError):
            run_framework("tvm", polybench.gemm, 16)

    def test_baseline_speedup_is_one(self):
        result = run_framework("baseline", polybench.gemm, 16)
        assert result.speedup == pytest.approx(1.0)

    def test_pom_result_fields(self):
        result = run_framework("pom", polybench.gemm, 32)
        assert result.framework == "pom"
        assert result.benchmark == "gemm"
        assert result.size == 32
        assert result.speedup > 1
        assert result.tiles
        assert result.dse_time_s > 0
        assert result.parallelism >= 1

    def test_scalehls_result_fields(self):
        result = run_framework("scalehls", polybench.gemm, 32)
        assert result.tiles
        assert result.achieved_ii is not None

    def test_all_frameworks_run_bicg(self):
        for framework in FRAMEWORKS:
            result = run_framework(framework, polybench.bicg, 16)
            assert result.report.total_cycles > 0, framework


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["A", "Long header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        assert format_table(["x"], [], title="T").startswith("T")

    def test_fmt_tiles(self):
        assert fmt_tiles({}) == "-"
        assert fmt_tiles({"s": [1, 2]}) == "[1, 2]"


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig2", "table3", "fig11", "table4", "fig12",
            "table5", "table6", "fig13", "table7", "fig14", "fig15",
            "pareto_front", "dataflow",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_modules_expose_run_render_main(self):
        for name, module in ALL_EXPERIMENTS.items():
            assert hasattr(module, "run"), name
            assert hasattr(module, "render"), name
            assert hasattr(module, "main"), name


class TestSmallScaleExperiments:
    """Each experiment's run/render round-trips at tiny sizes."""

    def test_fig2_small(self):
        results = fig2.run(size=32)
        text = fig2.render(results)
        assert "pom" in text

    def test_table3_small(self):
        results = table3.run(size=32, benchmarks=("gemm",))
        text = table3.render(results)
        assert "gemm" in text

    def test_pareto_front_small(self):
        results = pareto_front.run(size=32, workloads=("gemm",))
        text = pareto_front.render(results)
        assert "Pareto frontiers" in text
        assert results["gemm"].frontier, "pareto mode must yield a frontier"
        assert "gemm" in text and "#1" in text
