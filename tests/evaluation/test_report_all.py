"""The report_all harness: structure, failure capture, tracing."""

import re

import pytest

from repro import trace
from repro.evaluation import report_all
from repro.trace import load_chrome_trace
from repro.workloads import polybench


class _FakeExperiment:
    @staticmethod
    def main(**kwargs):
        polybench.gemm(8).estimate()
        print("fake experiment output")


class _FailingExperiment:
    @staticmethod
    def main(**kwargs):
        raise RuntimeError("synthetic experiment failure")


@pytest.fixture
def fake_experiments(monkeypatch):
    monkeypatch.setattr(
        report_all, "ALL_EXPERIMENTS", {"fake": _FakeExperiment}
    )


def _stable(report):
    """The report minus per-run timing lines."""
    return re.sub(r"\[.*: \d+\.\d+s\]", "[elapsed]", report)


class TestRunAll:
    def test_report_structure(self, fake_experiments):
        report = report_all.run_all()
        assert "## fake" in report
        assert "fake experiment output" in report
        assert "1/1 experiments succeeded" in report

    def test_failure_becomes_rpt001(self, monkeypatch):
        monkeypatch.setattr(
            report_all, "ALL_EXPERIMENTS", {"bad": _FailingExperiment}
        )
        failures = []
        report = report_all.run_all(failures=failures)
        assert "0/1 experiments succeeded" in report
        assert len(failures) == 1
        assert failures[0].code == "RPT001"
        assert "synthetic experiment failure" in failures[0].message


class TestTracing:
    def test_tracer_adopts_one_track_per_experiment(self, fake_experiments):
        tracer = trace.Tracer()
        report_all.run_all(trace=tracer)
        assert tracer.thread_names == {1: "experiment fake"}
        assert any(s.category == "hls" for s in tracer.spans)
        assert all(s.tid == 1 for s in tracer.spans)

    def test_trace_path_writes_chrome_json(self, fake_experiments, tmp_path):
        path = tmp_path / "report.json"
        report_all.run_all(trace=str(path))
        payload = load_chrome_trace(str(path))
        names = [
            e["args"]["name"] for e in payload["traceEvents"] if e["ph"] == "M"
        ]
        assert "experiment fake" in names

    def test_report_identical_with_and_without_tracing(self, fake_experiments):
        untraced = report_all.run_all()
        with_trace = report_all.run_all(trace=trace.Tracer())
        assert _stable(untraced) == _stable(with_trace)

    def test_experiments_do_not_leak_into_an_active_tracer(
        self, fake_experiments
    ):
        # run_all(trace=None) must not record into an ambient tracer:
        # experiments install their own local tracer (or none at all).
        with trace.tracing() as ambient:
            report_all.run_all()
        assert ambient.spans == []
