"""C co-simulation tests: generated HLS C vs the affine interpreter.

These tests compile the emitted kernel with the host C compiler and run
it on deterministic inputs -- if the checksums match the interpreter,
the *text we ship* computes what the *model we analyzed* computes.
"""

import shutil

import pytest

from repro.hlsgen.testbench import (
    checksum,
    cosimulate,
    deterministic_arrays,
    generate_testbench,
)
from repro.workloads import image, polybench, stencils

requires_cc = pytest.mark.skipif(
    shutil.which("gcc") is None and shutil.which("cc") is None,
    reason="no C compiler available",
)


class TestGeneration:
    def test_testbench_contains_kernel_and_main(self):
        text = generate_testbench(polybench.gemm(8))
        assert "void gemm" in text
        assert "int main(void)" in text
        assert text.count("printf") == 3  # one hash per array

    def test_deterministic_arrays_reproducible(self):
        a = deterministic_arrays(polybench.gemm(8))
        b = deterministic_arrays(polybench.gemm(8))
        for name in a:
            assert (a[name] == b[name]).all()

    def test_seed_changes_data(self):
        a = deterministic_arrays(polybench.gemm(8), seed=1)
        b = deterministic_arrays(polybench.gemm(8), seed=2)
        assert not (a["A"] == b["A"]).all()

    def test_checksum_order_sensitive(self):
        import numpy as np

        x = np.array([1.0, 2.0], dtype=np.float32)
        y = np.array([2.0, 1.0], dtype=np.float32)
        assert checksum(x) != checksum(y)


@requires_cc
class TestCosimulation:
    def test_plain_gemm(self):
        result = cosimulate(polybench.gemm(16))
        assert result.matched, result.mismatches()

    def test_scheduled_gemm(self):
        f = polybench.gemm(16)
        s = f.get_compute("s")
        s.tile("i", "j", 4, 4, "i0", "j0", "i1", "j1")
        s.pipeline("j0", 1)
        s.unroll("j1", 0)
        result = cosimulate(f)
        assert result.matched, result.mismatches()

    def test_dse_bicg(self):
        f = polybench.bicg(32)
        f.auto_DSE()
        result = cosimulate(f)
        assert result.matched, result.mismatches()

    def test_skewed_seidel(self):
        f = stencils.seidel(10, steps=2)
        f.auto_DSE()
        result = cosimulate(f)
        assert result.matched, result.mismatches()

    def test_fused_jacobi(self):
        f = stencils.jacobi_1d(32, steps=4)
        f.auto_DSE()
        result = cosimulate(f)
        assert result.matched, result.mismatches()

    def test_image_pipeline(self):
        f = image.blur(16)
        f.auto_DSE()
        result = cosimulate(f)
        assert result.matched, result.mismatches()

    def test_guarded_ragged_split(self):
        from repro.dsl import Function, compute, placeholder, var

        with Function("rag") as f:
            i = var("i", 0, 10)
            A = placeholder("A", (10,))
            s = compute("s", [i], A(i) + 1.0, A(i))
        s.split("i", 4, "i0", "i1")  # ragged: guards in the emitted C
        result = cosimulate(f)
        assert result.matched, result.mismatches()
