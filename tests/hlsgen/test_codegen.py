"""Unit tests for the HLS C backend."""

import pytest

from repro.dsl import Function, compute, int32, placeholder, var
from repro.dsl.expr import Call, Cast
from repro.hlsgen import generate_hls_c
from repro.pipeline import compile_to_hls_c, lower_to_affine
from repro.workloads import polybench, stencils


def gemm_code(schedule=None, n=32):
    f = polybench.gemm(n)
    if schedule:
        schedule(f)
    return compile_to_hls_c(f)


class TestStructure:
    def test_signature(self):
        code = gemm_code()
        assert "void gemm(float A[32][32], float B[32][32], float C[32][32])" in code

    def test_loops(self):
        code = gemm_code()
        assert "for (int k = 0; k <= 31; ++k)" in code
        assert code.count("for (") == 3

    def test_statement(self):
        code = gemm_code()
        assert "A[i][j] = (A[i][j] + (B[i][k] * C[k][j]));" in code

    def test_includes(self):
        code = gemm_code()
        assert "#include <math.h>" in code
        assert "#include <stdint.h>" in code

    def test_balanced_braces(self):
        code = gemm_code()
        assert code.count("{") == code.count("}")


class TestPragmas:
    def test_paper_fig6_pragmas(self):
        """The paper's Fig. 6 pragma set for tiled GEMM."""

        def schedule(f):
            s = f.get_compute("s")
            s.tile("i", "j", 4, 4, "i0", "j0", "i1", "j1")
            s.pipeline("j0", 1)
            s.unroll("i1", 4)
            s.unroll("j1", 4)
            f.placeholders()[0].partition([4, 4], "cyclic")

        code = gemm_code(schedule)
        assert "#pragma HLS array_partition variable=A cyclic factor=4 dim=1" in code
        assert "#pragma HLS array_partition variable=A cyclic factor=4 dim=2" in code
        assert "#pragma HLS pipeline II=1" in code
        assert code.count("#pragma HLS unroll factor=4") == 2
        assert "A[(4 * i0 + i1)][(4 * j0 + j1)]" in code

    def test_complete_unroll_pragma(self):
        def schedule(f):
            f.get_compute("s").unroll("j", 0)

        code = gemm_code(schedule)
        assert "#pragma HLS unroll\n" in code

    def test_complete_partition(self):
        def schedule(f):
            f.placeholders()[1].partition([32, 1], "complete")

        code = gemm_code(schedule)
        assert "#pragma HLS array_partition variable=B complete dim=1" in code

    def test_unit_factors_emit_nothing(self):
        def schedule(f):
            f.placeholders()[0].partition([1, 1], "cyclic")

        code = gemm_code(schedule)
        assert "array_partition" not in code


class TestExpressions:
    def test_intrinsic_spelling(self):
        with Function("c") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            compute("s", [i], Call("sqrt", [A(i)]), A(i))
        code = compile_to_hls_c(f)
        assert "sqrtf(A[i])" in code

    def test_relu_spelled_as_fmax(self):
        with Function("r") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            compute("s", [i], Call("relu", [A(i)]), A(i))
        code = compile_to_hls_c(f)
        assert "fmax(A[i], 0.0f)" in code

    def test_cast(self):
        with Function("cc") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,))
            B = placeholder("B", (4,), int32)
            compute("s", [i], Cast(int32, A(i)), B(i))
        code = compile_to_hls_c(f)
        assert "((int32_t)A[i])" in code

    def test_int_array_type(self):
        with Function("it") as f:
            i = var("i", 0, 4)
            A = placeholder("A", (4,), int32)
            compute("s", [i], A(i) + 1, A(i))
        code = compile_to_hls_c(f)
        assert "int32_t A[4]" in code


class TestGuardsAndBounds:
    def test_guard_emitted_for_fused_mismatch(self):
        with Function("g") as f:
            i = var("i", 0, 8)
            j = var("j", 0, 4)
            A = placeholder("A", (8,))
            B = placeholder("B", (4,))
            sa = compute("sa", [i], A(i) * 2.0, A(i))
            sb = compute("sb", [j], B(j) + 1.0, B(j))
        sb.after(sa, "i")
        code = compile_to_hls_c(f)
        assert "if (" in code

    def test_parametric_bounds_of_skewed_loop(self):
        f = stencils.seidel(8, steps=2)
        s = f.get_compute("S")
        s.skew("i", "j", 1, "iw", "jw")
        s.interchange("iw", "jw")
        code = compile_to_hls_c(f)
        # triangular inner loop: bounds reference the outer iterator
        assert "max(" in code or "min(" in code

    def test_c_compiles_with_gcc_when_available(self, tmp_path):
        import shutil
        import subprocess

        gcc = shutil.which("gcc") or shutil.which("cc")
        if gcc is None:
            pytest.skip("no C compiler available")
        code = gemm_code()
        # make it a compilable translation unit with a main
        source = tmp_path / "gemm.c"
        source.write_text(
            code.replace("#pragma HLS", "// #pragma HLS")
            + "\nint main(void) { return 0; }\n"
        )
        result = subprocess.run(
            [gcc, "-std=c99", "-fsyntax-only", str(source)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
