"""DNN acceleration: ResNet-18 critical loops under resource constraints.

Reproduces the paper's Section VII-E comparison in miniature: POM runs
the network's critical loops sequentially with operator reuse between
layers, while a ScaleHLS-style pipelined dataflow gives every layer
private hardware -- and overflows the device.

Run:  python examples/dnn_resnet.py
"""

from repro.baselines import scalehls
from repro.hls.device import DEFAULT_DEVICE
from repro.hls.report import speedup
from repro.pipeline import estimate
from repro.workloads import dnn
from repro.dse.options import DseOptions

SIZE = 8
SCALE = 0.25


def main():
    baseline_fn = dnn.resnet18(size=SIZE, channel_scale=SCALE)
    baseline = estimate(baseline_fn)
    critical = dnn.critical_loops(baseline_fn)
    print(f"ResNet-18 model: {len(baseline_fn.computes)} computes, "
          f"{len(critical)} critical loops")
    print("baseline:", baseline.summary())

    # -- POM: sequential layers, shared operators ----------------------------
    pom_fn = dnn.resnet18(size=SIZE, channel_scale=SCALE)
    result = pom_fn.auto_DSE()
    print("\nPOM (sequential + reuse):", result.report.summary())
    print("  speedup:", f"{speedup(baseline, result.report):.1f}x",
          "| feasible:", result.report.feasible())

    # -- ScaleHLS: pipelined dataflow, private per-layer hardware -------------
    sh_fn = dnn.resnet18(size=SIZE, channel_scale=SCALE)
    sh = scalehls.optimize(sh_fn, dataflow=True)
    print("\nScaleHLS (dataflow):", sh.report.summary())
    print("  speedup:", f"{speedup(baseline, sh.report):.1f}x",
          "| feasible:", sh.report.feasible(),
          f"(device has {DEFAULT_DEVICE.dsp} DSPs, design wants {sh.report.resources.dsp})")

    # -- POM under a tighter budget --------------------------------------------
    tight_fn = dnn.resnet18(size=SIZE, channel_scale=SCALE)
    tight = tight_fn.auto_DSE(options=DseOptions(resource_fraction=0.5))
    print("\nPOM at 50% budget:", tight.report.summary())
    print("  speedup:", f"{speedup(baseline, tight.report):.1f}x")


if __name__ == "__main__":
    main()
