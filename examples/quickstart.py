"""Quickstart: matrix multiplication through the whole POM stack.

Reproduces the paper's running example (Figs. 4-6): declare GEMM in the
POM DSL, apply the scheduling primitives from Fig. 5/6 (tile, pipeline,
unroll, array partition), inspect the multi-level IR, emit synthesizable
HLS C, and read the virtual synthesis report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.dsl import Function, compute, p_float32, placeholder, var
from repro.affine import interpret, print_func
from repro.pipeline import compile_to_hls_c, estimate, lower_to_affine


def main():
    # -- Algorithm specification (paper Fig. 4) ------------------------------
    with Function("gemm") as f:
        i = var("i", 0, 32)
        j = var("j", 0, 32)
        k = var("k", 0, 32)
        A = placeholder("A", (32, 32), p_float32)
        B = placeholder("B", (32, 32), p_float32)
        C = placeholder("C", (32, 32), p_float32)
        s = compute("s", [k, i, j], A(i, j) + B(i, k) * C(k, j), A(i, j))

    # -- Scheduling primitives (paper Figs. 5-6) -----------------------------
    s.tile(i, j, 4, 4, "i0", "j0", "i1", "j1")
    s.pipeline("j0", 1)
    s.unroll("i1", 4)
    s.unroll("j1", 4)
    A.partition([4, 4], "cyclic")
    B.partition([4, 1], "cyclic")
    C.partition([1, 4], "cyclic")

    # -- The annotated affine dialect (IR level 3) ---------------------------
    func_op = lower_to_affine(f)
    print("=== affine dialect with HLS attributes ===")
    print(print_func(func_op))

    # -- Functional correctness against numpy --------------------------------
    arrays = f.allocate_arrays(seed=0)
    reference = {name: buf.copy() for name, buf in arrays.items()}
    f.reference_execute(reference)
    interpret(func_op, arrays)
    assert np.allclose(arrays["A"], reference["A"], rtol=1e-4)
    print("\nfunctional check: transformed design matches the algorithm")

    # -- Virtual HLS synthesis ------------------------------------------------
    report = estimate(f)
    print("\n=== synthesis report ===")
    print(report.summary())
    for loop in report.loops:
        print("  ", loop)

    # -- Synthesizable HLS C ----------------------------------------------------
    print("\n=== generated HLS C (paper Fig. 6) ===")
    print(compile_to_hls_c(f))


if __name__ == "__main__":
    main()
