"""Extending the polyhedral transformation library.

The paper highlights that "thanks to the efficient representation with
integer sets and maps, POM can be easily extended to support more
customized transformations" (Section V-B).  This example adds a new
transformation -- *loop reversal* -- in a dozen lines by manipulating
the statement's integer set and rewriting its accesses, then verifies
it end to end against the reference semantics.

Run:  python examples/custom_transform.py
"""

import numpy as np

from repro.dsl import Function, compute, placeholder, var
from repro.dsl.expr import IterRef
from repro.affine import interpret, print_func
from repro.isl.affine import AffineExpr
from repro.polyir import PolyProgram
from repro.polyir.statement import PolyStatement
from repro.affine.lowering import lower_program


def reverse(stmt: PolyStatement, dim: str, new_dim: str) -> PolyStatement:
    """Reverse loop ``dim``: iterate ``new_dim = (lo + hi) - dim``.

    A unimodular transformation expressed, like the built-ins, as a
    dimension substitution on the iteration domain plus the matching
    rewrite of the statement body and destination access.
    """
    lo, hi = stmt.domain.constant_bounds(dim)
    if lo is None or hi is None:
        raise ValueError(f"loop {dim!r} needs constant bounds to reverse")
    total = lo + hi
    replacement = AffineExpr.const(total) - AffineExpr.var(new_dim)
    new_dims = [new_dim if d == dim else d for d in stmt.domain.dims]

    new = stmt.copy()
    new.domain = stmt.domain.substitute_dim(dim, replacement, new_dims)
    new.loop_order = [new_dim if d == dim else d for d in stmt.loop_order]
    binding = {dim: IterRef(new_dim) * (-1) + total}
    new.body = stmt.body.substitute_iters(binding)
    new.dest = stmt.dest.substitute_iters(binding)
    return new


def main():
    with Function("prefix_scan") as f:
        i = var("i", 1, 16)
        A = placeholder("A", (16,))
        compute("S", [i], A(i) + A(i - 1), A(i))

    program = PolyProgram(f)
    stmt = program.statement("S")
    reversed_stmt = reverse(stmt, "i", "ir")
    program.statements[0] = reversed_stmt

    func_op = lower_program(program)
    print("=== reversed loop (note: reversal breaks this scan on purpose) ===")
    print(print_func(func_op))

    # Reversal is NOT legal for a prefix scan (the dependence flips);
    # demonstrate that the functional oracle catches exactly that.
    arrays = f.allocate_arrays(seed=0)
    expected = {k: v.copy() for k, v in arrays.items()}
    f.reference_execute(expected)
    interpret(func_op, arrays)
    flipped = not np.allclose(arrays["A"], expected["A"])
    print("\noracle detects the illegal reversal:", flipped)

    # On an independent loop, reversal is legal and preserves semantics.
    with Function("scale") as g:
        i = var("i", 0, 16)
        X = placeholder("X", (16,))
        Y = placeholder("Y", (16,))
        compute("T", [i], X(i) * 2.0, Y(i))
    program = PolyProgram(g)
    program.statements[0] = reverse(program.statement("T"), "i", "ir")
    arrays = g.allocate_arrays(seed=1)
    expected = {k: v.copy() for k, v in arrays.items()}
    g.reference_execute(expected)
    interpret(lower_program(program), arrays)
    assert np.allclose(arrays["Y"], expected["Y"])
    print("legal reversal on an independent loop preserves semantics")


if __name__ == "__main__":
    main()
