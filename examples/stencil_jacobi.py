"""Stencil case study: Jacobi-1d with manual primitives vs autoDSE.

Reproduces the paper's Fig. 16: the ping-pong Jacobi-1d stencil is
declared with ``compute`` + ``after`` (the structural time loop); an
expert schedule (split + pipeline + unroll + partition) and the
``auto_DSE`` primitive are then compared -- the paper's point being
that autoDSE reaches the same design without FPGA expertise.

Run:  python examples/stencil_jacobi.py
"""

import numpy as np

from repro.dsl import Function, compute, p_float32, placeholder, var
from repro.affine import interpret
from repro.hls.report import speedup
from repro.pipeline import estimate, lower_to_affine

N = 1024
STEPS = 32


def build():
    """Jacobi-1d exactly as in paper Fig. 16 (1)-(2)."""
    with Function("jacobi_1d") as f:
        t = var("t", 0, STEPS)
        i = var("i", 1, N - 1)
        A = placeholder("A", (N,), p_float32)
        B = placeholder("B", (N,), p_float32)
        s1 = compute("S1", [t, i], (A(i - 1) + A(i) + A(i + 1)) * 0.33333, B(i))
        s2 = compute("S2", [t, i], (B(i - 1) + B(i) + B(i + 1)) * 0.33333, A(i))
    s2.after(s1, t)  # both sweeps nested in the shared time loop
    return f, s1, s2


def main():
    baseline_fn, _, _ = build()
    baseline = estimate(baseline_fn)
    print("baseline:", baseline.summary())

    # -- Expert schedule (paper Fig. 16 (3)) ---------------------------------
    manual_fn, s1, s2 = build()
    for s in (s1, s2):
        s.split("i", 31, f"{s.name}_it", f"{s.name}_iu")
        s.pipeline(f"{s.name}_it", 1)
        s.unroll(f"{s.name}_iu", 0)
    arrays = {p.name: p for p in manual_fn.placeholders()}
    arrays["A"].partition([32], "cyclic")
    arrays["B"].partition([32], "cyclic")
    manual = estimate(manual_fn)
    print("manual primitives:", manual.summary())
    print("  speedup over baseline:", f"{speedup(baseline, manual):.1f}x")

    # -- autoDSE (paper Fig. 16 (4)) ------------------------------------------
    auto_fn, _, _ = build()
    result = auto_fn.auto_DSE()
    print("autoDSE:", result.report.summary())
    print("  speedup over baseline:", f"{speedup(baseline, result.report):.1f}x")
    print("  achieved tiles:", result.tile_vectors(), "II:", result.report.worst_ii())
    print("  DSE time:", f"{result.dse_time_s:.2f}s in {result.evaluations} evaluations")

    # -- Both designs compute the same stencil ---------------------------------
    ref = baseline_fn.allocate_arrays(seed=1)
    expected = {k: v.copy() for k, v in ref.items()}
    baseline_fn.reference_execute(expected)
    got = baseline_fn.allocate_arrays(seed=1)
    interpret(lower_to_affine(auto_fn), got)
    assert np.allclose(got["A"], expected["A"], rtol=1e-3, atol=1e-5)
    print("\nfunctional check: autoDSE design matches the stencil semantics")


if __name__ == "__main__":
    main()
