"""Image-processing pipelines: multi-stage graphs through autoDSE.

Builds the paper's EdgeDetect application (smooth -> two Sobel
gradients -> magnitude), shows the dependence-graph structure POM
extracts (coarse-grained edges, data paths, per-node loop-carried
analysis), and lets the two-stage DSE optimize the whole pipeline under
the XC7Z020 budget.

Run:  python examples/image_pipeline.py
"""

from repro.depgraph import build_dependence_graph
from repro.hls.report import speedup
from repro.pipeline import estimate
from repro.workloads.image import blur, edge_detect

SIZE = 512


def inspect_graph(function):
    graph = build_dependence_graph(function)
    print(f"dependence graph of {function.name}: {graph}")
    print("  data paths:", [" -> ".join(p) for p in graph.data_paths()])
    for name in graph.nodes:
        analysis = graph.node_analysis(name)
        carried = [str(d) for d in analysis.carried_raw()]
        print(f"  {name}: reduction dims={analysis.reduction_dims} carried={carried or 'none'}")


def main():
    for factory in (edge_detect, blur):
        baseline_fn = factory(SIZE)
        baseline = estimate(baseline_fn)

        function = factory(SIZE)
        inspect_graph(function)

        result = function.auto_DSE()
        print(f"\n{function.name} ({SIZE}x{SIZE}):")
        print("  baseline:", baseline.summary())
        print("  POM:     ", result.report.summary())
        print("  speedup: ", f"{speedup(baseline, result.report):.1f}x")
        print("  tiles:   ", result.tile_vectors())
        print("  II:      ", result.report.worst_ii())
        print()


if __name__ == "__main__":
    main()
